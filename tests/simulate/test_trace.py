"""Tests for execution-trace aggregation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulate.trace import TaskRecord, Trace


def make_trace(entries):
    trace = Trace()
    for label, device, kind, start, end in entries:
        trace.record(label, device, kind, start, end)
    return trace


class TestTaskRecord:
    def test_duration(self):
        assert TaskRecord("t", "d", "compute", 1.0, 3.5).duration == 2.5

    def test_rejects_reversed_interval(self):
        with pytest.raises(ValueError):
            TaskRecord("t", "d", "compute", 3.0, 1.0)


class TestBusyTime:
    def test_disjoint_intervals_sum(self):
        t = make_trace([("a", "gpu", "compute", 0, 1), ("b", "gpu", "compute", 2, 3)])
        assert t.busy_time("gpu") == pytest.approx(2.0)

    def test_overlapping_intervals_merge(self):
        t = make_trace([("a", "gpu", "compute", 0, 2), ("b", "gpu", "h2d", 1, 3)])
        assert t.busy_time("gpu") == pytest.approx(3.0)

    def test_nested_intervals_merge(self):
        t = make_trace([("a", "gpu", "compute", 0, 10), ("b", "gpu", "h2d", 2, 3)])
        assert t.busy_time("gpu") == pytest.approx(10.0)

    def test_utilization_bounded(self):
        t = make_trace([
            ("a", "gpu", "compute", 0, 5),
            ("b", "gpu", "h2d", 0, 5),
            ("c", "cpu", "compute", 0, 1),
        ])
        assert t.utilization("gpu") == pytest.approx(1.0)
        assert t.utilization("cpu") == pytest.approx(0.2)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.floats(0, 100), st.floats(0.01, 10)), min_size=1, max_size=20,
    ))
    def test_union_never_exceeds_sum_or_span(self, raw):
        trace = Trace()
        for i, (start, dur) in enumerate(raw):
            trace.record(f"t{i}", "dev", "compute", start, start + dur)
        busy = trace.busy_time("dev")
        assert busy <= sum(d for _, d in raw) + 1e-9
        assert busy <= trace.makespan + 1e-9
        assert trace.utilization("dev") <= 1.0 + 1e-12


class TestQueries:
    def test_makespan_empty(self):
        assert Trace().makespan == 0.0

    def test_filter_by_device_and_kind(self):
        t = make_trace([
            ("a", "gpu", "compute", 0, 1),
            ("b", "gpu", "h2d", 1, 2),
            ("c", "cpu", "compute", 0, 2),
        ])
        assert len(t.filter(device="gpu")) == 2
        assert len(t.filter(device="gpu", kind="compute")) == 1
        assert len(t.filter(kind="compute")) == 2

    def test_totals(self):
        t = Trace()
        t.record("a", "gpu", "compute", 0, 1, nbytes=10, flops=100)
        t.record("b", "cpu", "compute", 0, 1, nbytes=20, flops=50)
        assert t.total_flops() == 150
        assert t.total_flops("gpu") == 100
        assert t.total_bytes("cpu") == 20

    def test_devices_in_first_seen_order(self):
        t = make_trace([
            ("a", "gpu0", "compute", 0, 1),
            ("b", "cpu", "compute", 0, 1),
            ("c", "gpu0", "compute", 1, 2),
        ])
        assert t.devices() == ["gpu0", "cpu"]

    def test_summary_keys(self):
        t = make_trace([("a", "gpu", "compute", 0, 1)])
        summary = t.summary()
        assert set(summary["gpu"]) == {"busy", "flops", "bytes", "utilization"}

    def test_gantt_renders(self):
        t = make_trace([("a", "gpu", "compute", 0, 1), ("b", "cpu", "h2d", 0, 0.5)])
        art = t.gantt(width=40)
        assert "gpu" in art and "cpu" in art

    def test_gantt_empty(self):
        assert "empty" in Trace().gantt()

    def test_gantt_covers_all_known_kinds(self):
        # shuffle/reduce/overhead used to render as blanks (glyph map only
        # covered compute/h2d/d2h/net)
        t = make_trace([
            ("a", "dev", "shuffle", 0.0, 0.2),
            ("b", "dev", "reduce", 0.2, 0.4),
            ("c", "dev", "overhead", 0.4, 0.6),
            ("d", "dev", "net", 0.6, 0.8),
            ("e", "dev", "recv", 0.8, 1.0),
        ])
        row = t.gantt(width=50).splitlines()[0]
        for ch in ("x", "+", ".", "~", "?"):
            assert ch in row

    def test_gantt_unknown_kind_gets_own_glyph(self):
        # DAG-introduced kinds render with their first letter, not a
        # silent "*" (that fallback is reserved for unnameable kinds).
        t = make_trace([("a", "dev", "mystery-kind", 0.0, 1.0)])
        out = t.gantt(width=30)
        assert "m" in out
        assert "*" not in out

    def test_gantt_unnameable_kind_falls_back_to_star(self):
        t = make_trace([("a", "dev", "###", 0.0, 1.0)])
        assert "*" in t.gantt(width=30)


class TestExport:
    def test_csv_roundtrip_structure(self):
        t = Trace()
        t.record("a,b", "gpu", "compute", 0.0, 1.5, nbytes=10, flops=20)
        csv = t.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "label,device,kind,start,end,nbytes,flops"
        assert lines[1].startswith('"a,b",gpu,compute,')

    def test_csv_quotes_embedded_quotes(self):
        t = Trace()
        t.record('say "hi"', "d", "net", 0, 1)
        assert '"say ""hi"""' in t.to_csv()

    def test_records_json_roundtrip(self):
        import json

        t = Trace()
        t.record("x", "cpu", "compute", 0.0, 2.0, nbytes=5, flops=7)
        t.record("y", "gpu", "h2d", 1.0, 3.0, nbytes=9)
        payload = json.dumps(t.to_records())
        rebuilt = Trace.from_records(json.loads(payload))
        assert rebuilt.records == t.records

    def test_roundtrip_preserves_summary(self):
        t = Trace()
        t.record("a", "gpu", "compute", 0, 4, flops=100)
        t.record("b", "gpu", "h2d", 2, 6, nbytes=50)
        rebuilt = Trace.from_records(t.to_records())
        assert rebuilt.summary() == t.summary()


class TestPhaseSpans:
    def _trace(self):
        t = Trace()
        t.record_phase("setup", 0, -1, 0.0, 0.5)
        t.record_phase("map", 0, 0, 0.5, 2.0)
        t.record_phase("reduce", 0, 0, 2.0, 2.5)
        t.record_phase("map", 1, 0, 0.5, 1.5)
        t.record_phase("map", 0, 1, 2.5, 3.5)
        return t

    def test_phase_spans_appended_in_order(self):
        t = self._trace()
        assert [s.phase for s in t.phase_spans] == [
            "setup", "map", "reduce", "map", "map",
        ]

    def test_phases_filter_by_rank_and_iteration(self):
        t = self._trace()
        assert len(t.phases(rank=0)) == 4
        assert len(t.phases(rank=0, iteration=0)) == 2
        assert [s.phase for s in t.phases(iteration=-1)] == ["setup"]

    def test_phase_breakdown_groups_per_iteration(self):
        t = self._trace()
        breakdown = t.phase_breakdown(rank=0)
        assert breakdown[-1] == {"setup": 0.5}
        assert breakdown[0] == {"map": 1.5, "reduce": 0.5}
        assert breakdown[1] == {"map": 1.0}

    def test_phase_breakdown_accumulates_repeated_phase(self):
        t = Trace()
        t.record_phase("map", 0, 0, 0.0, 1.0)
        t.record_phase("map", 0, 0, 1.0, 1.25)
        assert t.phase_breakdown()[0] == {"map": 1.25}

    def test_reversed_span_rejected(self):
        t = Trace()
        with pytest.raises(ValueError):
            t.record_phase("map", 0, 0, 2.0, 1.0)


class TestObservedRates:
    def test_observed_gflops_is_flops_over_busy(self):
        t = Trace()
        t.record("k", "n.gpu0", "compute", 0.0, 2.0, flops=4e9)
        assert t.observed_gflops("n.gpu0") == pytest.approx(2.0)

    def test_idle_device_observes_zero(self):
        t = Trace()
        assert t.observed_gflops("n.cpu") == 0.0

    def test_since_window_restricts_observation(self):
        t = Trace()
        t.record("slow", "n.gpu0", "compute", 0.0, 2.0, flops=2e9)  # 1 GF/s
        t.record("fast", "n.gpu0", "compute", 5.0, 6.0, flops=4e9)  # 4 GF/s
        assert t.observed_gflops("n.gpu0") == pytest.approx(2.0)
        assert t.observed_gflops("n.gpu0", since=5.0) == pytest.approx(4.0)

    def test_filter_since_keeps_later_records(self):
        t = Trace()
        t.record("a", "d", "compute", 0.0, 1.0)
        t.record("b", "d", "compute", 3.0, 4.0)
        assert [r.label for r in t.filter(device="d", since=2.0)] == ["b"]

    def test_overhead_counts_toward_busy_not_flops(self):
        t = Trace()
        t.record("k", "n.cpu", "compute", 0.0, 1.0, flops=1e9)
        t.record("d", "n.cpu", "overhead", 1.0, 2.0)
        assert t.observed_gflops("n.cpu") == pytest.approx(0.5)
