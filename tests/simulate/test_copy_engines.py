"""Tests for dual DMA copy engines (duplex PCI-E transfers)."""

import pytest

from repro.hardware.device import GpuSpec
from repro.simulate.engine import Engine
from repro.simulate.streams import GpuStreamEngine, StreamBlock, simulate_stream_batch


def make_gpu(copy_engines):
    return GpuSpec(
        name="g",
        peak_gflops=1e6,  # compute ~free: isolate the transfer engines
        dram_bandwidth=1e5,
        pcie_bandwidth=1.0,
        cores=64,
        copy_engines=copy_engines,
    )


class TestCopyEngines:
    def test_single_engine_serializes_directions(self):
        gpu = make_gpu(1)
        # 1 GB in and 1 GB out per block, compute negligible.
        blocks = [StreamBlock(1e9, 1.0, out_bytes=1e9)] * 2
        t = simulate_stream_batch(gpu, blocks, n_streams=2)
        # All four transfers share one engine: ~4 s.
        assert t == pytest.approx(4.0, rel=0.02)

    def test_dual_engines_overlap_directions(self):
        gpu = make_gpu(2)
        blocks = [StreamBlock(1e9, 1.0, out_bytes=1e9)] * 2
        t = simulate_stream_batch(gpu, blocks, n_streams=2)
        # h2d pair on one engine, d2h pair on the other, pipelined:
        # strictly faster than the serialized 4 s.
        assert t < 4.0 * 0.80

    def test_dual_engines_no_gain_for_oneway_traffic(self):
        one = make_gpu(1)
        two = make_gpu(2)
        blocks = [StreamBlock(1e9, 1.0)] * 3  # inbound only
        t1 = simulate_stream_batch(one, blocks, n_streams=3)
        t2 = simulate_stream_batch(two, blocks, n_streams=3)
        assert t1 == pytest.approx(t2, rel=1e-9)

    def test_tesla_presets_have_two_engines(self, delta, bigred2):
        assert delta.gpu.copy_engines == 2
        assert bigred2.gpu.copy_engines == 2

    def test_engine_links_shared_when_single(self):
        engine = Engine()
        se = GpuStreamEngine(engine, make_gpu(1))
        assert se.d2h is se.h2d

    def test_engine_links_distinct_when_dual(self):
        engine = Engine()
        se = GpuStreamEngine(engine, make_gpu(2))
        assert se.d2h is not se.h2d

    def test_pcie_alias_points_to_h2d(self):
        engine = Engine()
        se = GpuStreamEngine(engine, make_gpu(2))
        assert se.pcie is se.h2d

    def test_validation(self):
        with pytest.raises((ValueError, TypeError)):
            make_gpu(0)
