"""Tests for ingress-NIC contention modelling."""

import numpy as np
import pytest

from repro.comm.mpi import World, run_spmd
from repro.hardware.cluster import NetworkSpec
from repro.simulate.engine import Engine


def make_world(size, contended, bandwidth=1.0, latency=0.0):
    return World(
        Engine(),
        size,
        network=NetworkSpec(latency=latency, bandwidth=bandwidth),
        node_of=lambda r: r,
        contended=contended,
    )


def all_to_root(world, nbytes):
    """Every non-root rank fires one message at rank 0 simultaneously."""
    payload = np.zeros(int(nbytes / 8))

    def main(comm):
        if comm.rank == 0:
            for src in range(1, comm.size):
                yield from comm.recv(source=src)
            return comm.engine.now
        yield from comm.send(payload, dest=0)
        return None

    return run_spmd(world, main)[0]


class TestIngressContention:
    def test_hotspot_serializes_when_contended(self):
        # 7 simultaneous 1 GB messages into rank 0 over a 1 GB/s NIC.
        t = all_to_root(make_world(8, contended=True), 1e9)
        assert t == pytest.approx(7.0, rel=0.01)

    def test_hotspot_overlaps_when_uncontended(self):
        t = all_to_root(make_world(8, contended=False), 1e9)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_distinct_destinations_unaffected(self):
        """Contention is per destination: a pairwise exchange pattern sees
        no ingress queueing."""
        world = make_world(4, contended=True)
        payload = np.zeros(int(1e9 / 8))

        def main(comm):
            partner = comm.rank ^ 1
            if comm.rank < partner:
                yield from comm.send(payload, dest=partner)
                yield from comm.recv(source=partner)
            else:
                yield from comm.recv(source=comm.rank - 1)
                yield from comm.send(payload, dest=comm.rank - 1)
            return comm.engine.now

        results = run_spmd(world, main)
        assert max(results) == pytest.approx(2.0, rel=0.01)

    def test_collectives_still_correct(self):
        import operator

        world = make_world(6, contended=True)

        def main(comm):
            total = yield from comm.allreduce(comm.rank, operator.add)
            gathered = yield from comm.gather(comm.rank * 2)
            return total, gathered

        results = run_spmd(world, main)
        assert all(r[0] == 15 for r in results)
        assert results[0][1] == [0, 2, 4, 6, 8, 10]

    def test_same_node_bypasses_nic(self):
        world = World(
            Engine(), 2,
            network=NetworkSpec(latency=1.0, bandwidth=1e-9),
            node_of=lambda r: 0,  # co-located
            contended=True,
        )

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(np.zeros(1000), dest=1)
            else:
                yield from comm.recv(source=0)
            return comm.engine.now

        assert max(run_spmd(world, main)) == 0.0


class TestPrsWithContention:
    def test_results_identical(self, delta4):
        from repro.runtime.job import JobConfig
        from repro.runtime.prs import PRSRuntime
        from tests.helpers import ModSumApp

        r_free = PRSRuntime(
            delta4, JobConfig(contended_network=False)
        ).run(ModSumApp(n=2000, n_keys=5))
        r_nic = PRSRuntime(
            delta4, JobConfig(contended_network=True)
        ).run(ModSumApp(n=2000, n_keys=5))
        assert r_free.output == r_nic.output

    def test_contention_never_faster(self, delta8):
        """With the gather hotspot physical, jobs cannot speed up."""
        from repro.apps.stencil import Jacobi1DApp
        from repro.runtime.job import JobConfig, Overheads
        from repro.runtime.prs import PRSRuntime

        quiet = Overheads(0.0, 0.0, 0.0, 0.0)

        def run(contended):
            app = Jacobi1DApp.hot_spot(
                80_000, max_iterations=3, epsilon=1e-15
            )
            config = JobConfig(
                contended_network=contended, overheads=quiet
            )
            return PRSRuntime(delta8, config).run(app).makespan

        assert run(True) >= run(False) * 0.999