"""Tests for the closed-form collective cost models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.network import NetworkModel
from repro.hardware.cluster import NetworkSpec


@pytest.fixture
def model():
    return NetworkModel(NetworkSpec(latency=1e-5, bandwidth=1.0))


class TestCostModels:
    def test_p2p(self, model):
        assert model.p2p(1e9) == pytest.approx(1.0 + 1e-5)

    def test_bcast_single_rank_free(self, model):
        assert model.bcast(1e6, 1) == 0.0

    def test_bcast_log_rounds(self, model):
        assert model.bcast(1e9, 8) == pytest.approx(3 * model.p2p(1e9))
        assert model.bcast(1e9, 9) == pytest.approx(4 * model.p2p(1e9))

    def test_allreduce_is_reduce_plus_bcast(self, model):
        assert model.allreduce(1e6, 4) == pytest.approx(
            model.reduce(1e6, 4) + model.bcast(1e6, 4)
        )

    def test_gather_linear(self, model):
        assert model.gather(1e6, 5) == pytest.approx(4 * model.p2p(1e6))

    def test_scatter_equals_gather(self, model):
        assert model.scatter(1e6, 7) == model.gather(1e6, 7)

    def test_allgather(self, model):
        expected = model.gather(1e6, 4) + model.bcast(4e6, 4)
        assert model.allgather(1e6, 4) == pytest.approx(expected)

    def test_barrier_is_latency_only(self, model):
        # zero bytes: pure alpha cost
        assert model.barrier(8) == pytest.approx(6 * 1e-5)

    @settings(max_examples=30, deadline=None)
    @given(nbytes=st.floats(0, 1e9), ranks=st.integers(1, 64))
    def test_costs_nonnegative_and_monotone_in_ranks(self, model, nbytes, ranks):
        for fn in (model.bcast, model.reduce, model.allreduce, model.gather):
            cost = fn(nbytes, ranks)
            assert cost >= 0.0
            assert fn(nbytes, ranks + 1) >= cost - 1e-12

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.bcast(-1.0, 2)
        with pytest.raises((ValueError, TypeError)):
            model.bcast(1.0, 0)
