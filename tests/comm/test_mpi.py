"""Tests for the simulated MPI communicator: semantics and timing."""

import operator

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.mpi import World, payload_nbytes, run_spmd
from repro.hardware.cluster import NetworkSpec
from repro.simulate.engine import Engine, SimulationError


def make_world(size, latency=0.0, bandwidth=1.0, same_node=False):
    net = NetworkSpec(latency=latency, bandwidth=bandwidth)
    node_of = (lambda r: 0) if same_node else (lambda r: r)
    return World(Engine(), size, network=net, node_of=node_of)


class TestPayloadNbytes:
    def test_numpy_exact(self):
        assert payload_nbytes(np.zeros(100, dtype=np.float64)) == 800.0

    def test_none_free(self):
        assert payload_nbytes(None) == 0.0

    def test_scalars(self):
        assert payload_nbytes(3) == 8.0
        assert payload_nbytes(2.5) == 8.0

    def test_containers_sum(self):
        arr = np.zeros(10, dtype=np.float32)  # 40 bytes
        assert payload_nbytes([arr, arr]) == pytest.approx(40 * 2 + 16)

    def test_string_utf8(self):
        assert payload_nbytes("abc") == 3.0

    def test_dict(self):
        assert payload_nbytes({"a": 1}) > 8.0


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        world = make_world(2)

        def main(comm):
            if comm.rank == 0:
                yield from comm.send({"x": 7}, dest=1, tag=5)
                return None
            msg = yield from comm.recv(source=0, tag=5)
            return msg

        assert run_spmd(world, main)[1] == {"x": 7}

    def test_recv_without_sender_names_blocked_pair(self):
        # A silent hang must not stay silent: when the event queue drains
        # with a receive still posted, the deadlock error reports exactly
        # which (rank, tag) pairs are blocked and on whom.
        world = make_world(2)

        def main(comm):
            if comm.rank == 1:
                yield from comm.recv(source=0, tag=42)  # nobody sends
            return None

        with pytest.raises(SimulationError) as excinfo:
            run_spmd(world, main)
        message = str(excinfo.value)
        assert "deadlock" in message
        assert "rank 1 <- rank 0 (tag 42)" in message

    def test_wire_time_charged(self):
        world = make_world(2, latency=1e-3, bandwidth=1.0)

        def main(comm):
            data = np.zeros(125_000_000, dtype=np.float64)  # 1e9 bytes
            if comm.rank == 0:
                yield from comm.send(data, dest=1)
            else:
                yield from comm.recv(source=0)
            return comm.engine.now

        results = run_spmd(world, main)
        assert results[1] == pytest.approx(1.0 + 1e-3)

    def test_same_node_messages_free(self):
        world = make_world(2, latency=1.0, bandwidth=1e-9, same_node=True)

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(np.zeros(1000), dest=1)
            else:
                yield from comm.recv(source=0)
            return comm.engine.now

        assert run_spmd(world, main)[1] == 0.0

    def test_non_overtaking_order(self):
        world = make_world(2)

        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    yield from comm.send(i, dest=1, tag=1)
                return None
            got = []
            for _ in range(5):
                item = yield from comm.recv(source=0, tag=1)
                got.append(item)
            return got

        assert run_spmd(world, main)[1] == [0, 1, 2, 3, 4]

    def test_tags_isolate_streams(self):
        world = make_world(2)

        def main(comm):
            if comm.rank == 0:
                yield from comm.send("a", dest=1, tag=1)
                yield from comm.send("b", dest=1, tag=2)
                return None
            second = yield from comm.recv(source=0, tag=2)
            first = yield from comm.recv(source=0, tag=1)
            return (first, second)

        assert run_spmd(world, main)[1] == ("a", "b")

    def test_rank_bounds_checked(self):
        world = make_world(2)

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(1, dest=9)
            return None
            yield  # pragma: no cover

        with pytest.raises(ValueError, match="dest"):
            run_spmd(world, main)


class TestCollectives:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13])
    def test_bcast_reaches_everyone(self, size):
        world = make_world(size)

        def main(comm):
            data = "payload" if comm.rank == 0 else None
            result = yield from comm.bcast(data, root=0)
            return result

        assert run_spmd(world, main) == ["payload"] * size

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_bcast_nonzero_root(self, root):
        world = make_world(4)

        def main(comm):
            data = comm.rank if comm.rank == root else None
            result = yield from comm.bcast(data, root=root)
            return result

        assert run_spmd(world, main) == [root] * 4

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8])
    def test_reduce_sum(self, size):
        world = make_world(size)

        def main(comm):
            result = yield from comm.reduce(comm.rank + 1, operator.add)
            return result

        results = run_spmd(world, main)
        assert results[0] == size * (size + 1) // 2
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("size", [1, 2, 5, 8])
    def test_allreduce_everyone_gets_sum(self, size):
        world = make_world(size)

        def main(comm):
            result = yield from comm.allreduce(comm.rank, operator.add)
            return result

        expected = size * (size - 1) // 2
        assert run_spmd(world, main) == [expected] * size

    def test_allreduce_numpy_arrays(self):
        world = make_world(4)

        def main(comm):
            vec = np.full(3, float(comm.rank))
            result = yield from comm.allreduce(vec, np.add)
            return result

        for r in run_spmd(world, main):
            np.testing.assert_allclose(r, [6.0, 6.0, 6.0])

    @pytest.mark.parametrize("size", [1, 2, 3, 6])
    def test_gather_ordered(self, size):
        world = make_world(size)

        def main(comm):
            result = yield from comm.gather(comm.rank * 10)
            return result

        results = run_spmd(world, main)
        assert results[0] == [r * 10 for r in range(size)]

    @pytest.mark.parametrize("size", [1, 2, 4, 5])
    def test_scatter_delivers_slots(self, size):
        world = make_world(size)

        def main(comm):
            data = [f"item{i}" for i in range(size)] if comm.rank == 0 else None
            result = yield from comm.scatter(data)
            return result

        assert run_spmd(world, main) == [f"item{i}" for i in range(size)]

    def test_scatter_validates_length(self):
        world = make_world(3)

        def main(comm):
            data = [1, 2] if comm.rank == 0 else None
            result = yield from comm.scatter(data)
            return result

        with pytest.raises(ValueError, match="payloads"):
            run_spmd(world, main)

    def test_allgather(self):
        world = make_world(4)

        def main(comm):
            result = yield from comm.allgather(comm.rank)
            return result

        assert run_spmd(world, main) == [[0, 1, 2, 3]] * 4

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
    def test_alltoall_personalized_exchange(self, size):
        world = make_world(size)

        def main(comm):
            outgoing = [f"{comm.rank}->{dest}" for dest in range(size)]
            incoming = yield from comm.alltoall(outgoing)
            return incoming

        results = run_spmd(world, main)
        for dest, incoming in enumerate(results):
            assert incoming == [f"{src}->{dest}" for src in range(size)]

    def test_alltoall_validates_length(self):
        world = make_world(3)

        def main(comm):
            result = yield from comm.alltoall([1, 2])
            return result

        with pytest.raises(ValueError, match="alltoall"):
            run_spmd(world, main)

    def test_alltoall_no_root_hotspot(self):
        """Pairwise exchange: every rank sends P-1 messages (no rank
        funnels all traffic)."""
        size = 4
        world = make_world(size)

        def main(comm):
            outgoing = [np.zeros(100) for _ in range(size)]
            yield from comm.alltoall(outgoing)

        run_spmd(world, main)
        assert world.messages_sent == size * (size - 1)

    def test_barrier_synchronizes(self):
        world = make_world(4, latency=1e-6)

        def main(comm):
            # Rank r works r seconds, then all must leave barrier together.
            yield comm.engine.timeout(float(comm.rank))
            yield from comm.barrier()
            return comm.engine.now

        results = run_spmd(world, main)
        assert min(results) >= 3.0

    @settings(max_examples=15, deadline=None)
    @given(size=st.integers(1, 12), seed=st.integers(0, 2**16))
    def test_allreduce_matches_numpy(self, size, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=size)
        world = make_world(size)

        def main(comm):
            result = yield from comm.allreduce(float(values[comm.rank]), operator.add)
            return result

        for r in run_spmd(world, main):
            assert r == pytest.approx(values.sum(), rel=1e-9)


class TestCollectiveTiming:
    def test_bcast_cost_is_logarithmic(self):
        """Simulated binomial bcast must beat a linear send chain."""
        nbytes = 1e9

        def timed_bcast(size):
            world = make_world(size, latency=0.0, bandwidth=1.0)

            def main(comm):
                data = np.zeros(int(nbytes / 8)) if comm.rank == 0 else None
                yield from comm.bcast(data, root=0)
                return comm.engine.now

            return max(run_spmd(world, main))

        t8 = timed_bcast(8)
        # Binomial tree: root sends 3 sequential messages; depth-3 path
        # means the last leaf hears at 3 message times, not 7.
        assert t8 == pytest.approx(3.0, rel=0.01)

    def test_reduce_cost_matches_network_model(self):
        from repro.comm.network import NetworkModel
        net = NetworkSpec(latency=0.0, bandwidth=1.0)
        model = NetworkModel(net)
        # 4 ranks, 1 GB: binomial reduce = 2 rounds = 2 seconds.
        assert model.reduce(1e9, 4) == pytest.approx(2.0)

        world = make_world(4, latency=0.0, bandwidth=1.0)

        def main(comm):
            data = np.zeros(125_000_000)  # 1 GB
            yield from comm.reduce(data, np.add)
            return comm.engine.now

        assert max(run_spmd(world, main)) == pytest.approx(2.0, rel=0.01)


class TestWorldAccounting:
    def test_message_counters(self):
        world = make_world(2)

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(np.zeros(125, dtype=np.float64), dest=1)
            else:
                yield from comm.recv(source=0)
            return None

        run_spmd(world, main)
        assert world.messages_sent == 1
        assert world.bytes_sent == 1000.0

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            World(Engine(), 0)

    def test_comm_rank_validation(self):
        world = make_world(2)
        with pytest.raises(ValueError):
            world.comm(5)
