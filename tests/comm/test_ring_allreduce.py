"""Tests for the segmented ring allreduce."""

import operator

import numpy as np
import pytest

from repro.comm.mpi import World, run_spmd
from repro.hardware.cluster import NetworkSpec
from repro.simulate.engine import Engine


def make_world(size, latency=0.0, bandwidth=1.0):
    return World(
        Engine(), size,
        network=NetworkSpec(latency=latency, bandwidth=bandwidth),
        node_of=lambda r: r,
    )


def ring_sum(world, vectors):
    def main(comm):
        result = yield from comm.allreduce_ring(vectors[comm.rank])
        return result

    return run_spmd(world, main)


class TestCorrectness:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
    def test_sums_across_ranks(self, size):
        rng = np.random.default_rng(size)
        vectors = [rng.normal(size=37) for _ in range(size)]
        expected = np.sum(vectors, axis=0)
        for result in ring_sum(make_world(size), vectors):
            np.testing.assert_allclose(result, expected, rtol=1e-12)

    def test_matches_tree_allreduce(self):
        size = 5
        rng = np.random.default_rng(7)
        vectors = [rng.normal(size=64) for _ in range(size)]

        def main(comm):
            ring = yield from comm.allreduce_ring(vectors[comm.rank])
            tree = yield from comm.allreduce(
                vectors[comm.rank].copy(), np.add, tag=-500
            )
            return ring, tree

        for ring, tree in run_spmd(make_world(size), main):
            np.testing.assert_allclose(ring, tree, rtol=1e-12)

    def test_preserves_shape(self):
        vectors = [np.ones((4, 5)) * r for r in range(3)]
        for result in ring_sum(make_world(3), vectors):
            assert result.shape == (4, 5)
            np.testing.assert_allclose(result, np.full((4, 5), 3.0))

    def test_payload_smaller_than_ranks(self):
        """Degenerate segments (some empty) must still be exact."""
        vectors = [np.array([float(r)]) for r in range(6)]
        for result in ring_sum(make_world(6), vectors):
            np.testing.assert_allclose(result, [15.0])

    def test_rejects_non_array(self):
        world = make_world(2)

        def main(comm):
            result = yield from comm.allreduce_ring(3.0)
            return result

        with pytest.raises(TypeError):
            run_spmd(world, main)

    def test_input_not_mutated(self):
        vectors = [np.ones(8) * r for r in range(3)]
        originals = [v.copy() for v in vectors]
        ring_sum(make_world(3), vectors)
        for v, orig in zip(vectors, originals):
            np.testing.assert_array_equal(v, orig)


class TestTiming:
    def test_ring_beats_tree_for_large_payloads(self):
        """8 ranks, payloads >> latency*bandwidth: the tree pays
        2*ceil(log 8) = 6 full-payload rounds; the segmented ring moves
        ~2/P per link per step with all links busy.  (Small real arrays
        over a slow modelled link — simulated time only needs the ratio.)"""
        size = 8
        nbytes = 8e6
        vectors = [np.zeros(int(nbytes / 8)) for _ in range(size)]

        def timed(method):
            world = make_world(size, latency=0.0, bandwidth=1e-3)

            def main(comm):
                if method == "ring":
                    yield from comm.allreduce_ring(vectors[comm.rank])
                else:
                    yield from comm.allreduce(vectors[comm.rank], np.add)
                return comm.engine.now

            return max(run_spmd(world, main))

        t_tree = timed("tree")
        t_ring = timed("ring")
        assert t_ring < t_tree * 0.5

    def test_tree_beats_ring_for_tiny_payloads(self):
        """High-latency network, 8-byte payloads: 2(P-1) latency hops lose
        to 2 log P."""
        size = 16
        vectors = [np.zeros(1) for _ in range(size)]

        def timed(method):
            world = make_world(size, latency=1e-3, bandwidth=100.0)

            def main(comm):
                if method == "ring":
                    yield from comm.allreduce_ring(vectors[comm.rank])
                else:
                    yield from comm.allreduce(vectors[comm.rank], np.add)
                return comm.engine.now

            return max(run_spmd(world, main))

        assert timed("tree") < timed("ring")
