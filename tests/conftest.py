"""Shared fixtures: the paper's hardware presets and small test rigs."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.hardware import bigred2_node, delta_cluster, delta_node, generic_node

# Hardware fixtures are frozen dataclasses: sharing one instance across the
# examples hypothesis generates is safe, so the function-scoped-fixture
# health check is a false positive here.  Deadlines are disabled because
# simulation-heavy property tests have legitimately variable runtimes.
settings.register_profile(
    "repro",
    suppress_health_check=[HealthCheck.function_scoped_fixture],
    deadline=None,
)
settings.load_profile("repro")


@pytest.fixture
def delta():
    """A Delta fat node in the paper's experimental configuration (1 GPU)."""
    return delta_node(n_gpus=1)


@pytest.fixture
def delta_two_gpus():
    """A full Delta fat node (2 GPUs, as in Table 4)."""
    return delta_node(n_gpus=2)


@pytest.fixture
def bigred2():
    return bigred2_node()


@pytest.fixture
def delta4():
    """The 4-node Delta cluster of Table 3."""
    return delta_cluster(n_nodes=4, n_gpus=1)


@pytest.fixture
def delta8():
    """The 8-node Delta cluster of Figure 6."""
    return delta_cluster(n_nodes=8, n_gpus=1)


@pytest.fixture
def toy_node():
    """A small generic fat node with easy round numbers."""
    return generic_node(
        name="toy",
        cpu_gflops=100.0,
        cpu_bandwidth=25.0,
        cpu_cores=4,
        gpu_gflops=1000.0,
        gpu_bandwidth=100.0,
        pcie_bandwidth=10.0,
        gpu_cores=256,
    )
