"""Tests for the pluggable scheduling-policy layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.cmeans import CMeansApp
from repro.core.analytic import workload_split
from repro.data.synth import gaussian_mixture
from repro.hardware import Cluster, delta_cluster, generic_node
from repro.runtime.job import JobConfig, Overheads, Scheduling
from repro.runtime.policies import (
    AdaptiveFeedbackPolicy,
    DynamicPolicy,
    LocalityDynamicPolicy,
    SchedulingPolicy,
    StaticPolicy,
    available_policies,
    get_policy,
    register_policy,
)
from repro.runtime.prs import PRSRuntime

from tests.helpers import CountdownApp, ModSumApp

#: near-zero fixed costs: expose the scheduling decision itself
LEAN = Overheads(
    job_setup_s=0.0,
    cpu_task_dispatch_s=0.0,
    gpu_task_dispatch_s=0.0,
    iteration_s=0.0,
)


def one_node_cluster(node) -> Cluster:
    return Cluster(name=f"{node.name}-cluster", nodes=(node,))


class TestRegistry:
    def test_builtin_policies_registered(self):
        names = available_policies()
        for expected in (
            "static",
            "dynamic",
            "adaptive-feedback",
            "locality-dynamic",
        ):
            assert expected in names

    def test_get_policy_returns_classes(self):
        assert get_policy("static") is StaticPolicy
        assert get_policy("dynamic") is DynamicPolicy
        assert get_policy("adaptive-feedback") is AdaptiveFeedbackPolicy
        assert get_policy("locality-dynamic") is LocalityDynamicPolicy

    def test_unknown_policy_raises_with_available_names(self):
        with pytest.raises(ValueError, match="static"):
            get_policy("no-such-policy")

    def test_enum_members_alias_registry_names(self):
        for member in Scheduling:
            assert issubclass(get_policy(member.value), SchedulingPolicy)

    def test_jobconfig_accepts_policy_strings(self):
        for name in available_policies():
            assert JobConfig(scheduling=name).policy_name == name

    def test_jobconfig_accepts_enum_members(self):
        assert JobConfig(scheduling=Scheduling.DYNAMIC).policy_name == "dynamic"

    def test_jobconfig_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            JobConfig(scheduling="typo-policy")

    def test_duplicate_registration_rejected(self):
        class Impostor(StaticPolicy):
            name = "static"

        with pytest.raises(ValueError, match="already registered"):
            register_policy(Impostor)

    def test_reregistering_same_class_is_idempotent(self):
        assert register_policy(StaticPolicy) is StaticPolicy


def run_cmeans(policy: str, cluster, **config_kwargs):
    pts, _, _ = gaussian_mixture(600, 8, 3, seed=11)
    app = CMeansApp(pts, 3, seed=11, max_iterations=4)
    config = JobConfig(scheduling=policy, **config_kwargs)
    return PRSRuntime(cluster, config).run(app)


def _assert_close(x, y) -> None:
    if isinstance(x, (tuple, list)):
        assert len(x) == len(y)
        for xi, yi in zip(x, y):
            _assert_close(xi, yi)
    else:
        np.testing.assert_allclose(x, y)


def assert_outputs_equal(a, b) -> None:
    assert set(a) == set(b)
    for key in a:
        _assert_close(a[key], b[key])


class TestRegistryRoundTrip:
    """Every registered policy computes the same C-means answer."""

    def test_all_policies_match_static_output(self):
        cluster = delta_cluster(n_nodes=2)
        reference = run_cmeans("static", cluster)
        for name in available_policies():
            result = run_cmeans(name, cluster)
            assert result.policy == name
            assert_outputs_equal(result.output, reference.output)
            assert result.iterations == reference.iterations

    def test_polling_policies_report_no_fraction(self):
        cluster = delta_cluster(n_nodes=2)
        for name in ("dynamic", "locality-dynamic"):
            result = run_cmeans(name, cluster)
            assert result.final_cpu_fractions == [None, None]

    def test_static_reports_analytic_fraction(self):
        cluster = delta_cluster(n_nodes=2)
        result = run_cmeans("static", cluster)
        assert result.final_cpu_fractions == [
            result.splits[0].p,
            result.splits[1].p,
        ]


class TestDynamicBlockDerivation:
    """Satellite: MinBs-derived block count when dynamic_blocks is unset."""

    def test_explicit_block_count_still_honoured(self, delta4):
        app = ModSumApp(n=1000, n_keys=5)
        result = PRSRuntime(
            delta4,
            JobConfig(scheduling=Scheduling.DYNAMIC, dynamic_blocks=16),
        ).run(app)
        assert result.output == app.expected_output()

    def test_unset_block_count_derives_and_runs(self, delta4):
        app = ModSumApp(n=1000, n_keys=5)
        result = PRSRuntime(
            delta4, JobConfig(scheduling=Scheduling.DYNAMIC)
        ).run(app)
        assert result.output == app.expected_output()

    def test_derived_count_targets_load_balance(self, delta4):
        from repro.runtime.daemons import NodeResources
        from repro.runtime.policies import dynamic_block_count
        from repro.runtime.scheduler import SubTaskScheduler
        from repro.simulate.engine import Engine
        from repro.simulate.trace import Trace

        app = CountdownApp(n=4000)
        config = JobConfig(scheduling=Scheduling.DYNAMIC)
        node = delta4.nodes[0]
        res = NodeResources(Engine(), node, config.gpus_per_node)
        sched = SubTaskScheduler(res, app, config, Trace())
        from repro.runtime.api import Block

        n = dynamic_block_count(sched, Block(0, app.n_items()))
        # CountdownApp's intensity (500) is far above every ridge: MinBs
        # imposes no cap, so the count is the pure load-balance target.
        expected = (
            node.cpu.cores * config.cpu_block_multiplier
            + node.gpus[0].work_queues
            + 1
        )
        assert n == expected

    def test_minbs_caps_derived_count(self, delta4):
        from repro.runtime.api import Block
        from repro.runtime.daemons import NodeResources
        from repro.runtime.policies import dynamic_block_count
        from repro.runtime.scheduler import SubTaskScheduler
        from repro.simulate.engine import Engine
        from repro.simulate.trace import Trace

        # A bandwidth-bound app (intensity below the ridge) has no MinBs
        # (unsaturable) — still the load-balance target.  To exercise the
        # cap we need a size-dependent profile; the block count must never
        # exceed bytes // MinBs when MinBs exists.
        app = CountdownApp(n=16)  # tiny partition
        config = JobConfig(scheduling=Scheduling.DYNAMIC)
        node = delta4.nodes[0]
        res = NodeResources(Engine(), node, config.gpus_per_node)
        sched = SubTaskScheduler(res, app, config, Trace())
        n = dynamic_block_count(sched, Block(0, app.n_items()))
        assert 1 <= n  # never zero, even for tiny partitions


class TestAdaptiveFeedback:
    def test_converges_to_analytic_p_on_faithful_devices(self):
        """On devices that behave exactly as modelled, the feedback loop
        lands on the Equation (8) fraction."""
        node = generic_node(name="faithful")
        cluster = one_node_cluster(node)
        app = CountdownApp(n=20_000, rounds=5)
        result = PRSRuntime(
            cluster,
            JobConfig(scheduling="adaptive-feedback", overheads=LEAN),
        ).run(app)
        analytic_p = result.splits[0].p
        final_p = result.final_cpu_fractions[0]
        assert final_p is not None
        assert abs(final_p - analytic_p) <= 0.05

    @settings(max_examples=8)
    @given(
        cpu_gflops=st.floats(min_value=60.0, max_value=240.0),
        gpu_gflops=st.floats(min_value=500.0, max_value=2000.0),
    )
    def test_convergence_property(self, cpu_gflops, gpu_gflops):
        """Property: across device speed ratios, adaptive-feedback ends
        within ~±0.05 of the Equation (8) fraction on unperturbed devices.
        The bound carries a small slack because the EWMA settles a hair
        outside 0.05 for a few speed ratios (e.g. 220/632 GFLOPS lands at
        0.05000653, and 231/636 at 0.0514)."""
        node = generic_node(
            name="prop", cpu_gflops=cpu_gflops, gpu_gflops=gpu_gflops
        )
        cluster = one_node_cluster(node)
        app = CountdownApp(n=20_000, rounds=4)
        result = PRSRuntime(
            cluster,
            JobConfig(scheduling="adaptive-feedback", overheads=LEAN),
        ).run(app)
        final_p = result.final_cpu_fractions[0]
        assert final_p is not None
        assert abs(final_p - result.splits[0].p) <= 0.055

    def test_beats_static_under_device_perturbation(self):
        """A 2x CPU slowdown the model does not know about: static stays
        on the stale fraction, adaptive chases the measured rates."""
        healthy = generic_node(name="healthy")
        degraded = generic_node(
            name="degraded",
            cpu_gflops=healthy.cpu.peak_gflops / 2.0,
            cpu_bandwidth=healthy.cpu.dram_bandwidth / 2.0,
        )
        app_profile = CountdownApp(n=20_000, rounds=5)
        healthy_p = workload_split(
            healthy,
            app_profile.intensity(),
            staged=False,
            partition_bytes=max(app_profile.total_bytes(), 1.0),
        ).p
        cluster = one_node_cluster(degraded)

        def run(policy: str) -> tuple[float, float | None]:
            app = CountdownApp(n=20_000, rounds=5)
            result = PRSRuntime(
                cluster,
                JobConfig(
                    scheduling=policy,
                    force_cpu_fraction=healthy_p,
                    overheads=LEAN,
                ),
            ).run(app)
            return result.makespan, result.final_cpu_fractions[0]

        static_time, static_p = run("static")
        adaptive_time, adaptive_p = run("adaptive-feedback")

        assert static_p == pytest.approx(healthy_p)  # stuck on stale model
        assert adaptive_p is not None
        assert adaptive_p < healthy_p  # shifted work off the slow CPU
        assert adaptive_time < static_time  # and it paid off
        # The corrected fraction tracks Equation (8) for the *degraded*
        # node (what a re-run of the model with true specs would say).
        degraded_p = workload_split(
            degraded,
            app_profile.intensity(),
            staged=False,
            partition_bytes=max(app_profile.total_bytes(), 1.0),
        ).p
        assert abs(adaptive_p - degraded_p) <= 0.05

    def test_single_device_job_keeps_working(self, delta4):
        app = CountdownApp(n=2000)
        result = PRSRuntime(
            delta4, JobConfig(scheduling="adaptive-feedback", use_cpu=False)
        ).run(app)
        assert result.iterations == app.rounds
        assert result.final_cpu_fractions == []


class TestLocalityDynamic:
    def test_iterative_output_and_termination(self, delta4):
        app = CountdownApp(n=2000)
        result = PRSRuntime(
            delta4, JobConfig(scheduling="locality-dynamic")
        ).run(app)
        assert result.iterations == app.rounds

    def test_non_iterative_degenerates_to_dynamic(self, delta4):
        app_a = ModSumApp(n=1000, n_keys=5)
        res_a = PRSRuntime(
            delta4, JobConfig(scheduling="locality-dynamic")
        ).run(app_a)
        app_b = ModSumApp(n=1000, n_keys=5)
        res_b = PRSRuntime(delta4, JobConfig(scheduling="dynamic")).run(app_b)
        # Nothing is ever cached without iteration, so the schedules match.
        assert res_a.makespan == res_b.makespan
        assert res_a.output == app_a.expected_output()
