"""Integration tests for the PRS runtime on the simulated cluster."""

import pytest

from repro.hardware import Cluster, delta_cluster
from repro.runtime.job import JobConfig, Overheads, Scheduling
from repro.runtime.prs import PRSRuntime

from tests.helpers import CombinerModSumApp, CountdownApp, ModSumApp


def run_modsum(cluster, **config_kwargs):
    app = ModSumApp(n=1000, n_keys=5)
    runtime = PRSRuntime(cluster, JobConfig(**config_kwargs))
    result = runtime.run(app)
    return app, result


class TestCorrectness:
    @pytest.mark.parametrize("scheduling", [Scheduling.STATIC, Scheduling.DYNAMIC])
    def test_output_matches_ground_truth(self, delta4, scheduling):
        app, result = run_modsum(delta4, scheduling=scheduling)
        assert result.output == app.expected_output()

    @pytest.mark.parametrize(
        "use_cpu,use_gpu", [(True, True), (True, False), (False, True)]
    )
    def test_output_independent_of_device_mix(self, delta4, use_cpu, use_gpu):
        app, result = run_modsum(delta4, use_cpu=use_cpu, use_gpu=use_gpu)
        assert result.output == app.expected_output()

    def test_single_node_cluster(self):
        app, result = run_modsum(delta_cluster(n_nodes=1))
        assert result.output == app.expected_output()

    def test_combiner_path_same_answer(self, delta4):
        app = CombinerModSumApp(n=500, n_keys=3)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert result.output == app.expected_output()

    def test_more_partitions_than_items(self, delta4):
        app = ModSumApp(n=5, n_keys=2)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert result.output == app.expected_output()


class TestIterativeDriver:
    def test_runs_until_convergence(self, delta4):
        app = CountdownApp(n=200, rounds=4)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert app.updates == 4
        assert result.iterations == 4

    def test_max_iterations_cap(self, delta4):
        app = CountdownApp(n=200, rounds=999)
        app.max_iterations = 5
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert result.iterations == 5

    def test_iteration_log_recorded(self, delta4):
        app = CountdownApp(n=200, rounds=3)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        log = result.iteration_log
        assert len(log) == 3
        starts = [s.start for s in log.stats]
        assert starts == sorted(starts)

    def test_first_iteration_pays_staging(self, delta4):
        """Loop-invariant caching: iteration 0 stages over PCI-E, later
        iterations do not (paper §III.C.3 / §IV.B)."""
        app = CountdownApp(n=1_000_000, rounds=4)
        quiet = Overheads(
            job_setup_s=0.0,
            cpu_task_dispatch_s=0.0,
            gpu_task_dispatch_s=0.0,
            iteration_s=0.0,
        )
        result = PRSRuntime(delta4, JobConfig(overheads=quiet)).run(app)
        log = result.iteration_log
        first = log.stats[0].duration
        later = [s.duration for s in log.stats[1:]]
        assert first > max(later) * 1.05
        # h2d traffic happens only once per node
        h2d = result.trace.filter(kind="h2d")
        later_h2d = [r for r in h2d if r.start >= log.stats[1].start]
        assert not any(r.nbytes > 1e5 for r in later_h2d)


class TestSchedulingBehaviour:
    def test_static_split_matches_analytic(self, delta4):
        app, result = run_modsum(delta4)
        assert len(result.splits) == 4
        p = result.splits[0].p
        assert 0.0 < p < 1.0
        # every node made the same decision on a homogeneous cluster
        assert all(s.p == pytest.approx(p) for s in result.splits)

    def test_force_cpu_fraction(self, delta4):
        app, result = run_modsum(delta4, force_cpu_fraction=0.5)
        assert all(s.p == 0.5 for s in result.splits)

    def test_gpu_only_has_no_split(self, delta4):
        app, result = run_modsum(delta4, use_cpu=False)
        assert result.splits == []

    def test_both_devices_do_work_static(self, delta4):
        app, result = run_modsum(delta4)
        assert result.device_fraction(".cpu") > 0.0
        assert result.device_fraction(".gpu") > 0.0

    def test_measured_fraction_tracks_analytic(self, delta4):
        """The executed flop share must be close to Equation (8)'s p."""
        app = ModSumApp(n=20_000, n_keys=4, intensity=50.0)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        p = result.splits[0].p
        measured = result.device_fraction(".cpu")
        # map flops dominate; reduce noise allows a few percent drift
        assert measured == pytest.approx(p, abs=0.05)

    def test_dynamic_balances_work(self, delta4):
        app = ModSumApp(n=20_000, n_keys=4, intensity=50.0)
        result = PRSRuntime(
            delta4, JobConfig(scheduling=Scheduling.DYNAMIC, dynamic_blocks=128)
        ).run(app)
        # Both device classes must end up doing real MAP work (reduce
        # tasks alone must not satisfy this — they always run CPU-side).
        cpu_map_flops = sum(
            r.flops for r in result.trace.records
            if ".cpu" in r.device and r.kind == "compute"
        )
        gpu_map_flops = sum(
            r.flops for r in result.trace.records
            if ".gpu" in r.device and r.kind == "compute"
        )
        total = cpu_map_flops + gpu_map_flops
        assert cpu_map_flops > 0.02 * total
        assert gpu_map_flops > 0.02 * total


class TestTimingSanity:
    def test_makespan_positive_and_reported(self, delta4):
        app, result = run_modsum(delta4)
        assert result.makespan > 0
        assert result.trace.makespan <= result.makespan + 1e-12

    def test_gpu_cpu_beats_gpu_only_for_low_intensity(self, delta4):
        """The GEMV-shaped headline: co-processing wins big at low AI.

        Fixed runtime overheads are zeroed so device time dominates (the
        paper's GEMV experiments likewise measure the compute phase, with
        M x N = 3.5e8 elements per node dwarfing dispatch costs).
        """
        quiet = Overheads(0.0, 0.0, 0.0, 0.0)
        app_both = ModSumApp(n=2_000_000, intensity=2.0)
        app_gpu = ModSumApp(n=2_000_000, intensity=2.0)
        t_both = PRSRuntime(
            delta4, JobConfig(overheads=quiet)
        ).run(app_both).makespan
        t_gpu = PRSRuntime(
            delta4, JobConfig(use_cpu=False, overheads=quiet)
        ).run(app_gpu).makespan
        assert t_both < t_gpu * 0.5

    def test_network_bytes_counted(self, delta4):
        app, result = run_modsum(delta4)
        assert result.network_bytes > 0

    def test_gflops_property(self, delta4):
        app, result = run_modsum(delta4)
        assert result.gflops > 0
        assert result.gflops_per_node(4) == pytest.approx(result.gflops / 4)

    def test_job_setup_charged(self, delta4):
        overheads = Overheads(job_setup_s=1.0)
        app = ModSumApp(n=100)
        result = PRSRuntime(delta4, JobConfig(overheads=overheads)).run(app)
        assert result.makespan > 1.0


class TestValidation:
    def test_requires_some_device(self, delta4):
        with pytest.raises(ValueError):
            JobConfig(use_cpu=False, use_gpu=False)

    def test_gpu_only_on_cpu_only_node_fails(self):
        from repro.hardware import FatNode
        from repro.hardware.presets import xeon_x5660_pair

        cluster = Cluster(
            name="cpuonly", nodes=(FatNode(name="n0", cpu=xeon_x5660_pair()),)
        )
        with pytest.raises(ValueError, match="daemons"):
            PRSRuntime(cluster, JobConfig(use_cpu=False)).run(ModSumApp(100))
