"""Tests for region-based memory management (§III.C.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.memory import (
    ALIGNMENT,
    MALLOC_OVERHEAD_S,
    Region,
    RegionAllocator,
    naive_alloc_seconds,
)


class TestRegion:
    def test_alloc_returns_view_of_requested_size(self):
        region = Region(1024)
        _, view = region.alloc(100)
        assert view.size == 100

    def test_offsets_aligned(self):
        region = Region(1024)
        offsets = [region.alloc(3)[0] for _ in range(5)]
        assert all(off % ALIGNMENT == 0 for off in offsets)

    def test_allocations_do_not_overlap(self):
        region = Region(1 << 12)
        spans = []
        for size in (10, 33, 7, 100, 64):
            off, _ = region.alloc(size)
            spans.append((off, off + size))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1

    def test_growth_preserves_contents(self):
        region = Region(64)
        off, view = region.alloc(32)
        view[:] = 7
        region.alloc(1024)  # forces growth + copy
        assert np.all(region.view(off, 32) == 7)

    def test_growth_counts_backing_allocs(self):
        region = Region(64)
        assert region.stats.backing_allocs == 1
        region.alloc(1000)
        assert region.stats.backing_allocs == 2
        assert region.stats.grow_copies == 1

    def test_reset_is_bulk_free(self):
        region = Region(1024)
        for _ in range(10):
            region.alloc(50)
        region.reset()
        assert region.used == 0
        # Buffer is reused: no new backing allocation after reset.
        before = region.stats.backing_allocs
        region.alloc(50)
        assert region.stats.backing_allocs == before

    def test_view_bounds_checked(self):
        region = Region(1024)
        region.alloc(16)
        with pytest.raises(ValueError):
            region.view(0, 999)

    def test_rejects_zero_alloc(self):
        with pytest.raises(ValueError):
            Region(64).alloc(0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=50))
    def test_serves_arbitrary_sequences(self, sizes):
        region = Region(128)
        total = 0
        for size in sizes:
            off, view = region.alloc(size)
            assert view.size == size
            total += size
        assert region.stats.bytes_served == total
        assert region.stats.object_allocs == len(sizes)


class TestRegionAllocator:
    def test_per_thread_regions_isolated(self):
        alloc = RegionAllocator(256)
        alloc.alloc("cpu", 100)
        alloc.alloc("gpu0", 100)
        assert set(alloc.regions) == {"cpu", "gpu0"}
        assert alloc.regions["cpu"].used >= 100

    def test_reset_all(self):
        alloc = RegionAllocator(256)
        alloc.alloc("a", 10)
        alloc.alloc("b", 10)
        alloc.reset_all()
        assert all(r.used == 0 for r in alloc.regions.values())

    def test_total_stats_aggregate(self):
        alloc = RegionAllocator(1 << 16)
        for i in range(10):
            alloc.alloc("t1", 100)
            alloc.alloc("t2", 100)
        total = alloc.total_stats()
        assert total.object_allocs == 20
        assert total.backing_allocs == 2  # one initial buffer each


class TestCostModel:
    def test_region_beats_naive_for_many_small_allocs(self):
        """The paper's rationale: aggregated malloc overhead degrades
        performance when many small requests exist."""
        alloc = RegionAllocator(1 << 20)
        n = 10_000
        for _ in range(n):
            alloc.alloc("gpu0", 64)
        region_cost = alloc.total_stats().simulated_alloc_seconds
        naive_cost = naive_alloc_seconds(n)
        assert region_cost < naive_cost / 100

    def test_naive_cost_linear(self):
        assert naive_alloc_seconds(10) == pytest.approx(10 * MALLOC_OVERHEAD_S)
