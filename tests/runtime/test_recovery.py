"""Recovery policy types plus block/device/rank-level recovery behaviour."""

import pytest

from repro.hardware import delta_cluster
from repro.runtime.job import JobConfig
from repro.runtime.prs import PRSRuntime
from repro.runtime.recovery import (
    FaultPolicy,
    JobAbortedError,
    NodeDeadError,
    RecoveryState,
    RecoverySummary,
)
from tests.helpers import CountdownApp, ModSumApp


class TestFaultPolicy:
    def test_defaults_validate(self):
        FaultPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_block_retries": 0},
            {"backoff_base_s": -1.0},
            {"backoff_factor": 0.0},
            {"blacklist_after": 0},
            {"comm_timeout_s": 0.0},
            {"heartbeat_interval_s": 0.0},
            {"checkpoint_interval": 0},
            {"max_rank_restarts": -1},
            {"retransmit_timeout_s": 0.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)


class TestRecoveryTypes:
    def test_node_dead_error_names_the_node(self):
        err = NodeDeadError(2, "delta02")
        assert err.node_index == 2
        assert "delta02" in str(err)

    def test_recovery_state_save(self):
        state = RecoveryState(interval=2)
        state.save(3, {"x": 1})
        state.save(5, {"x": 2})
        assert (state.iteration, state.state) == (5, {"x": 2})
        assert state.checkpoints_taken == 2

    def test_summary_clean(self):
        assert RecoverySummary().clean
        assert RecoverySummary(heartbeats=40).clean
        assert not RecoverySummary(faults_injected=1, blocks_retried=2).clean
        assert not RecoverySummary(rank_restarts=1).clean


def _run(app, **config_kwargs):
    cluster = delta_cluster(n_nodes=2)
    return PRSRuntime(cluster, JobConfig(**config_kwargs)).run(app)


class TestBlockRecovery:
    def test_gpu_kill_reroutes_blocks_and_conserves_output(self):
        app = ModSumApp(4000)
        result = _run(app, faults="gpu_kill@0:t=0.022")
        assert result.output == app.expected_output()
        rec = result.recovery
        assert rec is not None and rec.faults_injected == 1
        assert rec.blocks_retried > 0
        assert rec.rank_restarts == 0

    def test_hiccup_fails_inflight_blocks_then_blacklists(self):
        # One CPU hiccup interrupts every in-flight CPU block; the failure
        # count crosses blacklist_after, so the device is benched and the
        # Equation (8) split refit over the survivors.
        app = ModSumApp(4000)
        result = _run(app, faults="cpu_hiccup@0:t=0.021")
        assert result.output == app.expected_output()
        rec = result.recovery
        assert rec.block_failures > 0
        assert rec.blocks_retried >= rec.block_failures
        assert rec.devices_blacklisted == 1
        assert rec.split_refits >= 1

    def test_fault_beyond_makespan_is_clean(self):
        app = ModSumApp(4000)
        result = _run(app, faults="gpu_kill@0:t=999.0")
        assert result.output == app.expected_output()
        assert result.recovery is not None and result.recovery.clean

    def test_zero_fault_job_has_no_recovery_summary(self):
        app = ModSumApp(4000)
        assert _run(app).recovery is None


class TestRankRecovery:
    DEAD_NODE = ["cpu_kill@0:t=0.021", "gpu_kill@0:t=0.021"]

    def test_dead_node_restarts_on_survivors(self):
        app = ModSumApp(4000)
        result = _run(app, faults=self.DEAD_NODE)
        assert result.output == app.expected_output()
        rec = result.recovery
        assert rec.rank_restarts == 1
        assert rec.dead_nodes == (0,)

    def test_rank_recovery_disabled_aborts(self):
        app = ModSumApp(4000)
        with pytest.raises(JobAbortedError, match="rank recovery"):
            _run(
                app,
                faults=self.DEAD_NODE,
                fault_policy=FaultPolicy(rank_recovery=False),
            )

    def test_restart_budget_exhaustion_aborts(self):
        app = ModSumApp(4000)
        with pytest.raises(JobAbortedError):
            _run(
                app,
                faults=self.DEAD_NODE,
                fault_policy=FaultPolicy(max_rank_restarts=0),
            )

    def test_iterative_rank_kill_restarts_from_checkpoint(self):
        app = CountdownApp(400, rounds=6)
        cluster = delta_cluster(n_nodes=3)
        result = PRSRuntime(
            cluster, JobConfig(faults="rank_kill@1:t=0.03")
        ).run(app)
        rec = result.recovery
        assert rec.rank_restarts == 1
        assert rec.dead_nodes == (1,)
        assert rec.checkpoints > 0
        # Checkpoint/restore keeps the loop exact: the counter still hits
        # zero after exactly `rounds` effective updates.
        assert app.remaining <= 0
        assert result.iterations == app.rounds
