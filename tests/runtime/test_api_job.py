"""Unit tests for the MapReduce API surface and JobConfig."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intensity import ConstantIntensity
from repro.runtime.api import Block, MapReduceApp
from repro.runtime.job import JobConfig, JobResult, Overheads, Scheduling
from repro.simulate.trace import Trace

from tests.helpers import CombinerModSumApp, ModSumApp


class TestBlock:
    def test_n_items(self):
        assert Block(3, 10).n_items == 7

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            Block(5, 2)

    def test_rejects_negative(self):
        with pytest.raises((ValueError, TypeError)):
            Block(-1, 2)

    def test_split_covers_exactly(self):
        parts = Block(10, 35).split(4)
        assert parts[0].start == 10 and parts[-1].stop == 35
        assert sum(p.n_items for p in parts) == 25

    def test_split_drops_empties(self):
        parts = Block(0, 2).split(5)
        assert len(parts) == 2
        assert all(p.n_items == 1 for p in parts)

    @settings(max_examples=40, deadline=None)
    @given(start=st.integers(0, 1000), size=st.integers(0, 1000),
           k=st.integers(1, 40))
    def test_split_partition_property(self, start, size, k):
        block = Block(start, start + size)
        parts = block.split(k)
        covered = sorted((p.start, p.stop) for p in parts)
        # Contiguous cover of the original range.
        total = sum(hi - lo for lo, hi in covered)
        assert total == size
        for (l1, h1), (l2, h2) in zip(covered, covered[1:]):
            assert h1 == l2


class TestAppIntrospection:
    def test_has_combiner_detection(self):
        assert not ModSumApp().has_combiner()
        assert CombinerModSumApp().has_combiner()

    def test_gpu_device_map_defaults_to_cpu(self):
        app = ModSumApp(n=100)
        block = Block(0, 10)
        assert app.gpu_device_map(block) == app.cpu_map(block)

    def test_gpu_map_dispatch_without_host_override(self):
        app = ModSumApp(n=100)
        assert not app.has_gpu_host_map()
        assert app.gpu_map(Block(0, 5)) == app.cpu_map(Block(0, 5))

    def test_compare_default_ordering(self):
        app = ModSumApp()
        assert app.compare(1, 2) < 0
        assert app.compare(2, 1) > 0
        assert app.compare(3, 3) == 0

    def test_total_bytes(self):
        app = ModSumApp(n=100)  # 8 bytes/item
        assert app.total_bytes() == 800.0

    def test_map_flops_from_intensity(self):
        app = ModSumApp(n=100, intensity=10.0)
        assert app.map_flops(Block(0, 10)) == pytest.approx(10.0 * 80.0)

    def test_map_flops_empty_block_zero(self):
        app = ModSumApp(n=100)
        assert app.map_flops(Block(5, 5)) == 0.0


class TestJobConfig:
    def test_defaults(self):
        config = JobConfig()
        assert config.scheduling is Scheduling.STATIC
        assert config.partitions_per_node == 2  # paper default
        assert config.use_cpu and config.use_gpu

    def test_devices_label(self):
        assert JobConfig().devices_label() == "GPU+CPU"
        assert JobConfig(use_gpu=False).devices_label() == "CPU"
        assert JobConfig(use_cpu=False).devices_label() == "GPU"

    @pytest.mark.parametrize("field,value", [
        ("gpus_per_node", 0),
        ("partitions_per_node", 0),
        ("cpu_block_multiplier", 0),
        ("dynamic_blocks", 0),
        ("overlap_threshold", 1.5),
        ("force_cpu_fraction", -0.1),
    ])
    def test_validation(self, field, value):
        with pytest.raises((ValueError, TypeError)):
            JobConfig(**{field: value})

    def test_overheads_validation(self):
        with pytest.raises(ValueError):
            Overheads(job_setup_s=-1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            JobConfig().use_cpu = False


class TestJobResult:
    def make(self, makespan=2.0, flops=4e9):
        return JobResult(
            output={}, makespan=makespan, trace=Trace(), total_flops=flops
        )

    def test_gflops(self):
        assert self.make().gflops == pytest.approx(2.0)

    def test_gflops_zero_makespan(self):
        assert self.make(makespan=0.0).gflops == 0.0

    def test_gflops_per_node(self):
        assert self.make().gflops_per_node(4) == pytest.approx(0.5)

    def test_device_fraction_empty_trace(self):
        assert self.make().device_fraction("cpu") == 0.0

    def test_device_fraction_partition(self):
        trace = Trace()
        trace.record("a", "n.cpu", "compute", 0, 1, flops=30)
        trace.record("b", "n.gpu0", "compute", 0, 1, flops=70)
        result = JobResult(output={}, makespan=1.0, trace=trace)
        assert result.device_fraction(".cpu") == pytest.approx(0.3)
        assert result.device_fraction(".gpu") == pytest.approx(0.7)
