"""Tests for GPU-memory-bounded loop-invariant caching."""

import pytest

from repro.hardware import Cluster, FatNode, generic_node
from repro.hardware.cluster import NetworkSpec
from repro.hardware.device import CpuSpec, GpuSpec
from repro.runtime.api import Block
from repro.runtime.daemons import GpuDaemon, NodeResources
from repro.runtime.job import JobConfig, Overheads
from repro.simulate.engine import Engine
from repro.simulate.trace import Trace

from tests.helpers import CountdownApp

QUIET_CONFIG = JobConfig(overheads=Overheads(0.0, 0.0, 0.0, 0.0))


def tiny_gpu_node(memory_bytes: int):
    cpu = CpuSpec(name="cpu", peak_gflops=100.0, dram_bandwidth=25.0, cores=4)
    gpu = GpuSpec(
        name="tinygpu",
        peak_gflops=1000.0,
        dram_bandwidth=100.0,
        pcie_bandwidth=5.0,
        cores=128,
        memory_bytes=memory_bytes,
    )
    return FatNode(name="tiny", cpu=cpu, gpus=(gpu,))


def run_block_twice(node, app, block):
    engine = Engine()
    trace = Trace()
    daemon = GpuDaemon(NodeResources(engine, node), 0, app, QUIET_CONFIG, trace)
    sink = []
    engine.run(engine.process(daemon.run_map_block(block, sink)))
    engine.run(engine.process(daemon.run_map_block(block, sink)))
    return daemon, trace


class TestCapacityBoundedCache:
    def test_fitting_input_cached(self):
        node = tiny_gpu_node(memory_bytes=1 << 20)  # 1 MiB
        app = CountdownApp(n=1000)  # 4 KB total
        daemon, trace = run_block_twice(node, app, Block(0, 1000))
        assert daemon.is_cached(Block(0, 1000))
        h2d = [r for r in trace.filter(kind="h2d") if r.nbytes > 0]
        assert len(h2d) == 1  # staged exactly once

    def test_oversized_input_never_cached(self):
        node = tiny_gpu_node(memory_bytes=1024)  # 1 KiB device
        app = CountdownApp(n=1000)  # 4 KB block > memory
        daemon, trace = run_block_twice(node, app, Block(0, 1000))
        assert not daemon.is_cached(Block(0, 1000))
        h2d = [r for r in trace.filter(kind="h2d") if r.nbytes > 0]
        assert len(h2d) == 2  # re-staged every pass

    def test_cache_fills_then_stops(self):
        # Device fits ~2 of 4 blocks (capacity fraction 0.9 of 2 KiB).
        node = tiny_gpu_node(memory_bytes=2048)
        app = CountdownApp(n=1000)  # blocks of 250 items = 1000 B each
        engine = Engine()
        daemon = GpuDaemon(
            NodeResources(engine, node), 0, app, QUIET_CONFIG, Trace()
        )
        sink = []
        blocks = Block(0, 1000).split(4)
        for block in blocks:
            engine.run(engine.process(daemon.run_map_block(block, sink)))
        cached = [b for b in blocks if daemon.is_cached(b)]
        assert len(cached) == 1  # 1000 B fits in 1843 B budget, 2000 B not
        assert daemon.cached_bytes <= 0.9 * node.gpu.memory_bytes

    def test_invalidate_frees_budget(self):
        node = tiny_gpu_node(memory_bytes=1 << 20)
        app = CountdownApp(n=100)
        daemon, _ = run_block_twice(node, app, Block(0, 100))
        assert daemon.cached_bytes > 0
        daemon.invalidate_cache()
        assert daemon.cached_bytes == 0.0

    def test_end_to_end_oversized_iterative_job(self):
        """A full PRS job whose data exceeds GPU memory still completes,
        paying staging every iteration."""
        from repro.runtime.prs import PRSRuntime

        node = tiny_gpu_node(memory_bytes=1024)
        cluster = Cluster(
            name="tiny", nodes=(node,),
            network=NetworkSpec(latency=1e-6, bandwidth=1.0),
        )
        app = CountdownApp(n=5000, rounds=3)
        result = PRSRuntime(cluster, QUIET_CONFIG).run(app)
        assert result.iterations == 3
        durations = [s.duration for s in result.iteration_log.stats]
        # No caching: all iterations cost roughly the same.
        assert max(durations) < 1.3 * min(durations)
