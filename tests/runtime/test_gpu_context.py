"""Tests for the single-GPU-context design (§III.C.3)."""

import pytest

from repro.hardware import delta_cluster
from repro.runtime.job import JobConfig, Overheads
from repro.runtime.prs import PRSRuntime

from tests.helpers import CountdownApp, ModSumApp

QUIET = Overheads(0.0, 0.0, 0.0, 0.0, gpu_context_s=2e-2)


class TestSingleContext:
    def test_default_is_funneled(self):
        assert JobConfig().single_gpu_context

    def test_per_task_contexts_cost_time(self, delta4):
        """'Such overhead is magnified when a large number of MapReduce
        tasks create their own GPU context.'"""
        def run(single):
            app = ModSumApp(n=20_000, intensity=50.0)
            config = JobConfig(
                use_cpu=False, single_gpu_context=single, overheads=QUIET
            )
            return PRSRuntime(delta4, config).run(app).makespan

        assert run(False) > run(True) * 2.0

    def test_per_task_contexts_break_caching(self, delta4):
        """Without the funneled daemon context, loop-invariant data cannot
        stay resident: every iteration re-stages."""
        def run(single):
            app = CountdownApp(n=500_000, rounds=3)
            config = JobConfig(
                use_cpu=False, single_gpu_context=single, overheads=QUIET
            )
            return PRSRuntime(delta4, config).run(app)

        funneled = run(True)
        per_task = run(False)
        assert (
            per_task.trace.total_bytes(kind="h2d")
            > 2.5 * funneled.trace.total_bytes(kind="h2d")
        )

    def test_results_identical_either_way(self, delta4):
        app1 = ModSumApp(n=1000, n_keys=3)
        app2 = ModSumApp(n=1000, n_keys=3)
        r1 = PRSRuntime(
            delta4, JobConfig(single_gpu_context=True)
        ).run(app1)
        r2 = PRSRuntime(
            delta4, JobConfig(single_gpu_context=False)
        ).run(app2)
        assert r1.output == r2.output == app1.expected_output()

    def test_context_overhead_validated(self):
        with pytest.raises(ValueError):
            Overheads(gpu_context_s=-1.0)
