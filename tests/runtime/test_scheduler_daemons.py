"""Unit tests for the sub-task scheduler and device daemons."""

import pytest

from repro.core.intensity import ConstantIntensity
from repro.runtime.api import Block
from repro.runtime.daemons import CpuDaemon, GpuDaemon, NodeResources
from repro.runtime.job import JobConfig, Overheads, Scheduling
from repro.runtime.scheduler import SubTaskScheduler
from repro.simulate.engine import Engine
from repro.simulate.trace import Trace

from tests.helpers import CountdownApp, ModSumApp

QUIET = Overheads(0.0, 0.0, 0.0, 0.0)
QUIET_CONFIG = JobConfig(overheads=QUIET)


def make_rig(delta, app, config=None):
    engine = Engine()
    trace = Trace()
    res = NodeResources(engine, delta, n_gpus=1)
    config = config if config is not None else JobConfig(overheads=QUIET)
    sched = SubTaskScheduler(res, app, config, trace)
    return engine, trace, res, sched


class TestCpuDaemon:
    def test_block_seconds_formula(self, delta):
        app = ModSumApp(n=1000, intensity=100.0)  # above A_cr: peak-bound
        engine = Engine()
        daemon = CpuDaemon(NodeResources(engine, delta), app, QUIET_CONFIG, Trace())
        block = Block(0, 100)  # 800 bytes, 80k flops
        per_core = delta.cpu.peak_gflops / delta.cpu.cores
        expected = app.map_flops(block) / (per_core * 1e9)
        assert daemon.block_seconds(block) == pytest.approx(expected)

    def test_bandwidth_bound_block(self, delta):
        app = ModSumApp(n=1000, intensity=1.0)  # below A_cr
        engine = Engine()
        daemon = CpuDaemon(NodeResources(engine, delta), app, QUIET_CONFIG, Trace())
        block = Block(0, 100)
        per_core = delta.cpu.attainable_gflops(1.0) / delta.cpu.cores
        assert daemon.block_seconds(block) == pytest.approx(
            app.map_flops(block) / (per_core * 1e9)
        )

    def test_map_blocks_fill_core_pool(self, delta):
        app = ModSumApp(n=24_000, intensity=100.0)
        engine = Engine()
        res = NodeResources(engine, delta)
        daemon = CpuDaemon(res, app, QUIET_CONFIG, Trace())
        sink = []
        blocks = Block(0, 24_000).split(24)  # 2 waves on 12 cores
        proc = engine.process(daemon.run_map_blocks(blocks, sink))
        engine.run(proc)
        one = daemon.block_seconds(blocks[0])
        assert engine.now == pytest.approx(2 * one, rel=1e-6)

    def test_reduce_collects_all_keys(self, delta):
        app = ModSumApp(n=100)
        engine = Engine()
        daemon = CpuDaemon(NodeResources(engine, delta), app, QUIET_CONFIG, Trace())
        sink = {}
        proc = engine.process(
            daemon.run_reduce({"a": [1, 2], "b": [3]}, sink)
        )
        engine.run(proc)
        assert sink == {"a": 3, "b": 3}


class TestGpuDaemon:
    def test_kernel_seconds_uses_resident_roofline(self, delta):
        app = ModSumApp(n=1000, intensity=500.0)
        engine = Engine()
        daemon = GpuDaemon(NodeResources(engine, delta), 0, app, QUIET_CONFIG, Trace())
        block = Block(0, 500)
        rate = delta.gpu.attainable_gflops(500.0, staged=False)
        assert daemon.kernel_seconds(block) == pytest.approx(
            app.map_flops(block) / (rate * 1e9)
        )

    def test_non_iterative_app_always_staged(self, delta):
        app = ModSumApp(n=1000)
        engine = Engine()
        daemon = GpuDaemon(NodeResources(engine, delta), 0, app, QUIET_CONFIG, Trace())
        block = Block(0, 100)
        assert not daemon.is_cached(block)
        sink = []
        engine.run(engine.process(daemon.run_map_block(block, sink)))
        assert not daemon.is_cached(block)  # iterative=False: never cached

    def test_iterative_block_cached_after_first_pass(self, delta):
        app = CountdownApp(n=1000)
        engine = Engine()
        daemon = GpuDaemon(NodeResources(engine, delta), 0, app, QUIET_CONFIG, Trace())
        block = Block(0, 100)
        sink = []
        engine.run(engine.process(daemon.run_map_block(block, sink)))
        assert daemon.is_cached(block)
        # A different span is not covered by the cache.
        assert not daemon.is_cached(Block(100, 200))

    def test_invalidate_cache(self, delta):
        app = CountdownApp(n=1000)
        engine = Engine()
        daemon = GpuDaemon(NodeResources(engine, delta), 0, app, QUIET_CONFIG, Trace())
        sink = []
        engine.run(engine.process(daemon.run_map_block(Block(0, 50), sink)))
        daemon.invalidate_cache()
        assert not daemon.is_cached(Block(0, 50))

    def test_gpu_index_bounds(self, delta):
        engine = Engine()
        res = NodeResources(engine, delta, n_gpus=1)
        with pytest.raises(ValueError, match="GPU engines"):
            GpuDaemon(res, 3, ModSumApp(), QUIET_CONFIG, Trace())

    def test_gpu_reduce(self, delta):
        app = ModSumApp(n=100)
        engine = Engine()
        daemon = GpuDaemon(NodeResources(engine, delta), 0, app, QUIET_CONFIG, Trace())
        sink = {}
        engine.run(engine.process(daemon.run_reduce({"k": [5, 6]}, sink)))
        assert sink == {"k": 11}


class TestSubTaskScheduler:
    def test_device_weights_cpu_only(self, delta):
        app = ModSumApp()
        _, _, _, sched = make_rig(
            delta, app, JobConfig(use_gpu=False, overheads=QUIET)
        )
        assert sched.device_weights() == [1.0]

    def test_device_weights_gpu_only_single(self, delta):
        app = ModSumApp()
        _, _, _, sched = make_rig(
            delta, app, JobConfig(use_cpu=False, overheads=QUIET)
        )
        assert sched.device_weights() == [1.0]

    def test_device_weights_both_sum_to_one(self, delta):
        app = ModSumApp(intensity=50.0)
        _, _, _, sched = make_rig(delta, app)
        weights = sched.device_weights()
        assert len(weights) == 2
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] == pytest.approx(sched.split_decision.p)

    def test_two_gpus_share_equally(self, delta_two_gpus):
        app = ModSumApp(intensity=500.0)
        engine = Engine()
        res = NodeResources(engine, delta_two_gpus, n_gpus=2)
        sched = SubTaskScheduler(
            res, app, JobConfig(gpus_per_node=2, overheads=QUIET), Trace()
        )
        weights = sched.device_weights()
        assert len(weights) == 3
        assert weights[1] == pytest.approx(weights[2])
        assert sum(weights) == pytest.approx(1.0)

    def test_static_map_produces_all_pairs(self, delta):
        app = ModSumApp(n=3000, n_keys=3)
        engine, _, _, sched = make_rig(delta, app)
        sink = []
        engine.run(engine.process(sched.run_map_partition(Block(0, 3000), sink)))
        from repro.runtime.shuffle import group_by_key

        groups = group_by_key(sink)
        merged = {k: sum(v) for k, v in groups.items()}
        assert merged == app.expected_output()

    def test_dynamic_map_produces_all_pairs(self, delta):
        app = ModSumApp(n=3000, n_keys=3)
        engine, _, _, sched = make_rig(
            delta, app,
            JobConfig(scheduling=Scheduling.DYNAMIC, overheads=QUIET),
        )
        sink = []
        engine.run(engine.process(sched.run_map_partition(Block(0, 3000), sink)))
        from repro.runtime.shuffle import group_by_key

        merged = {k: sum(v) for k, v in group_by_key(sink).items()}
        assert merged == app.expected_output()

    def test_empty_partition_is_noop(self, delta):
        app = ModSumApp(n=100)
        engine, _, _, sched = make_rig(delta, app)
        sink = []
        engine.run(engine.process(sched.run_map_partition(Block(5, 5), sink)))
        assert sink == []
        assert engine.now == 0.0

    def test_forced_fraction_propagates(self, delta):
        app = ModSumApp(intensity=50.0)
        _, _, _, sched = make_rig(
            delta, app, JobConfig(force_cpu_fraction=0.3, overheads=QUIET)
        )
        assert sched.split_decision.p == 0.3
        assert sched.device_weights()[0] == pytest.approx(0.3)

    def test_reduce_routes_to_cpu_when_engaged(self, delta):
        app = ModSumApp()
        engine, trace, _, sched = make_rig(delta, app)
        sink = {}
        engine.run(engine.process(sched.run_reduce({"k": [1, 2]}, sink)))
        assert sink == {"k": 3}
        assert trace.filter(kind="reduce")  # ran on the CPU daemon

    def test_reduce_routes_to_gpu_when_cpu_off(self, delta):
        app = ModSumApp()
        engine, trace, _, sched = make_rig(
            delta, app, JobConfig(use_cpu=False, overheads=QUIET)
        )
        sink = {}
        engine.run(engine.process(sched.run_reduce({"k": [1, 2]}, sink)))
        assert sink == {"k": 3}
        assert any("gpu" in r.device for r in trace.records)
