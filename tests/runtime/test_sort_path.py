"""Tests for the intermediate-sort path (compare(), §III.A.2)."""

import pytest

from repro.hardware import delta_cluster
from repro.runtime.api import Block
from repro.runtime.job import JobConfig
from repro.runtime.prs import PRSRuntime

from tests.helpers import ModSumApp


class DescendingModSum(ModSumApp):
    """ModSum with a custom descending key order via compare()."""

    name = "modsum-desc"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.reduce_order: list[int] = []

    def compare(self, key1, key2):
        return key2 - key1  # descending

    def cpu_reduce(self, key, values):
        self.reduce_order.append(key)
        return super().cpu_reduce(key, values)


class TestSortIntermediate:
    def test_sorted_run_is_correct(self, delta4):
        app = ModSumApp(n=500, n_keys=4)
        result = PRSRuntime(
            delta4, JobConfig(sort_intermediate=True)
        ).run(app)
        assert result.output == app.expected_output()

    def test_custom_compare_orders_reduces(self):
        """With one node every key reduces locally: the app's compare()
        must control the reduce order."""
        app = DescendingModSum(n=400, n_keys=5)
        cluster = delta_cluster(n_nodes=1)
        PRSRuntime(cluster, JobConfig(sort_intermediate=True)).run(app)
        assert app.reduce_order == sorted(app.reduce_order, reverse=True)

    def test_sorting_charges_time(self, delta4):
        app1 = ModSumApp(n=500, n_keys=4)
        app2 = ModSumApp(n=500, n_keys=4)
        t_plain = PRSRuntime(delta4, JobConfig()).run(app1).makespan
        t_sorted = PRSRuntime(
            delta4, JobConfig(sort_intermediate=True)
        ).run(app2).makespan
        assert t_sorted >= t_plain

    def test_default_is_off(self):
        assert not JobConfig().sort_intermediate
