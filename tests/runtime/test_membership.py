"""Elastic membership: the versioned view, the schedule, the autoscaler,
and the elastic driver end to end.

The load-bearing property (docs/FAULTS.md "Elasticity"): membership
transitions re-assign *canonical* parts — cut once from the full-pool
Equation (8) geometry — so a job that walks its rank set mid-run reduces
**bitwise** the same pair stream as a fault-free run of the same
configuration.
"""

import numpy as np
import pytest

from repro.data.synth import gaussian_mixture
from repro.hardware import delta_cluster
from repro.obs.metrics import POLICY_QUEUE_DEPTH_CURRENT
from repro.obs.timeseries import (
    DEVICE_BUSY_FRACTION,
    DEVICE_IMBALANCE,
    LINK_UTILIZATION,
    SeriesBank,
)
from repro.runtime.autoscale import AutoscalePolicy, Autoscaler
from repro.runtime.job import JobConfig
from repro.runtime.membership import (
    MAX_EPOCHS,
    ClusterView,
    ElasticState,
    EpochRecord,
    MembershipError,
    MembershipEvent,
    MembershipSchedule,
)
from repro.runtime.prs import PRSRuntime
from repro.runtime.recovery import RecoverySummary


class TestClusterView:
    def test_defaults_to_full_pool_with_start_epoch(self):
        view = ClusterView(4)
        assert view.members() == [0, 1, 2, 3]
        assert view.epoch == 0
        assert len(view.history) == 1
        assert view.history[0].cause == "start"
        assert view.history[0].members == (0, 1, 2, 3)

    def test_initial_subset(self):
        view = ClusterView(8, initial=[0, 1])
        assert view.members() == [0, 1]
        assert view.n_live == 2

    def test_empty_initial_rejected(self):
        with pytest.raises(MembershipError):
            ClusterView(4, initial=[])

    def test_initial_outside_pool_rejected(self):
        with pytest.raises(MembershipError, match="outside the pool"):
            ClusterView(4, initial=[0, 7])

    def test_join_bumps_epoch_and_sorts_members(self):
        view = ClusterView(4, initial=[1, 3])
        rec = view.join(0, time=0.5)
        assert view.epoch == 1 and rec.epoch == 1
        assert rec.cause == "join" and rec.members == (0, 1, 3)
        assert view.members() == [0, 1, 3]

    def test_duplicate_join_rejected(self):
        view = ClusterView(4, initial=[1])
        with pytest.raises(MembershipError, match="already a member"):
            view.join(1, time=0.1)

    def test_join_outside_pool_rejected(self):
        view = ClusterView(4, initial=[1])
        with pytest.raises(MembershipError, match="outside the pool"):
            view.join(4, time=0.1)

    def test_drain_removes_member(self):
        view = ClusterView(4)
        rec = view.drain(2, time=0.2)
        assert rec.cause == "drain" and rec.members == (0, 1, 3)

    def test_drain_refuses_to_empty_cluster(self):
        view = ClusterView(4, initial=[2])
        with pytest.raises(MembershipError, match="empty"):
            view.drain(2, time=0.2)

    def test_drain_non_member_rejected(self):
        view = ClusterView(4, initial=[0, 1])
        with pytest.raises(MembershipError, match="not a member"):
            view.drain(3, time=0.2)

    def test_leave_is_tolerant_and_may_empty(self):
        view = ClusterView(4, initial=[0])
        assert view.leave(3, time=0.1) is None  # absent: no epoch bump
        assert view.epoch == 0
        rec = view.leave(0, time=0.2)  # kills may empty the live set
        assert rec.cause == "rank-kill" and rec.members == ()
        assert view.n_live == 0

    def test_history_interleaves_causes(self):
        view = ClusterView(4, initial=[0, 1])
        view.join(2, time=0.1)
        view.leave(1, time=0.2)
        view.drain(2, time=0.3)
        assert [r.cause for r in view.history] == [
            "start", "join", "rank-kill", "drain",
        ]


class TestEpochRecord:
    def test_unknown_cause_rejected(self):
        with pytest.raises(MembershipError, match="unknown epoch cause"):
            EpochRecord(epoch=1, time=0.0, cause="meteor", members=(0,))

    def test_dict_round_trip(self):
        rec = EpochRecord(
            epoch=3, time=0.125, cause="autoscale-up", members=(0, 1, 2),
            detail="scale up: queue_depth=9",
        )
        assert EpochRecord.from_dict(rec.to_dict()) == rec


class TestMembershipSchedule:
    def test_orders_by_time_then_insertion(self):
        sched = MembershipSchedule([
            MembershipEvent(time=0.2, action="drain", node=1),
            MembershipEvent(time=0.1, action="join", node=2),
            MembershipEvent(time=0.1, action="join", node=3),
        ])
        due = sched.pop_due(0.15)
        assert [(e.node, e.action) for e in due] == [(2, "join"), (3, "join")]
        assert len(sched) == 1 and not sched.has_due(0.15)
        assert sched.has_due(0.2)

    def test_unknown_action_rejected(self):
        with pytest.raises(MembershipError, match="unknown membership action"):
            MembershipEvent(time=0.1, action="explode", node=1)


class TestElasticState:
    def _state(self, initial=(0, 1), pool=4, events=()):
        return ElasticState(
            ClusterView(pool, initial=initial),
            MembershipSchedule(events),
        )

    def test_should_reconfigure_on_due_event(self):
        state = self._state(
            events=[MembershipEvent(time=0.1, action="join", node=2)]
        )
        assert not state.should_reconfigure(0.05, None, set(), iteration=3)
        assert state.should_reconfigure(0.1, None, set(), iteration=3)

    def test_apply_due_skips_join_of_dead_node(self):
        state = self._state(events=[
            MembershipEvent(time=0.1, action="join", node=2),
            MembershipEvent(time=0.1, action="join", node=3),
        ])
        applied = state.apply_due(0.1, dead_nodes={2})
        assert [rec.members for _, rec in applied] == [(0, 1, 3)]
        assert len(state.skipped) == 1
        event, reason = state.skipped[0]
        assert event.node == 2 and "dead" in reason

    def test_apply_due_skips_drain_to_empty(self):
        state = self._state(initial=(0,), events=[
            MembershipEvent(time=0.1, action="drain", node=0),
        ])
        assert state.apply_due(0.1, set()) == []
        assert state.view.members() == [0]
        assert "empty" in state.skipped[0][1]

    def test_epoch_budget_aborts_runaway_loops(self):
        state = self._state()
        state.view.epoch = MAX_EPOCHS + 1
        with pytest.raises(RuntimeError, match="epoch count exceeded"):
            state.check_epoch_budget()


def _bank(**metric_samples):
    """Build a SeriesBank from ``name=[(t, v), ...]`` kwargs (metric
    constants passed via a dict to keep the call sites readable)."""
    bank = SeriesBank()
    for name, samples in metric_samples.items():
        series = bank.get_or_create(name, ())
        for t, v in samples:
            series.append(t, v)
    return bank


class TestAutoscaler:
    IDLE = [(0.001 * i, 0.1) for i in range(1, 11)]
    BUSY = [(0.001 * i, 0.9) for i in range(1, 11)]
    DEEP_QUEUE = [(0.001 * i, 12.0) for i in range(1, 11)]
    COLD_LINK = [(0.001 * i, 0.2) for i in range(1, 11)]
    HOT_LINK = [(0.001 * i, 0.95) for i in range(1, 11)]

    def _scaler(self, pool=4, **knobs):
        return Autoscaler(AutoscalePolicy(**knobs), pool_size=pool)

    def test_warmup_gates_first_iterations(self):
        scaler = self._scaler(warmup_iterations=3)
        bank = _bank(**{POLICY_QUEUE_DEPTH_CURRENT: self.DEEP_QUEUE})
        view = ClusterView(4, initial=[0, 1])
        assert scaler.evaluate(bank, 0.01, view, set(), iteration=2) is None
        assert scaler.evaluate(bank, 0.01, view, set(), iteration=3) is not None

    def test_scale_up_picks_lowest_free_node_and_carries_signals(self):
        scaler = self._scaler()
        bank = _bank(**{
            POLICY_QUEUE_DEPTH_CURRENT: self.DEEP_QUEUE,
            LINK_UTILIZATION: self.COLD_LINK,
        })
        view = ClusterView(4, initial=[0, 3])
        decision = scaler.evaluate(bank, 0.01, view, {1}, iteration=5)
        assert decision is not None and decision.action == "up"
        assert decision.node == 2  # 1 is dead, 0/3 are live
        assert decision.inputs["queue_depth"] == 12.0
        assert "queue_depth" in decision.reason

    def test_hot_link_vetoes_scale_up(self):
        scaler = self._scaler()
        bank = _bank(**{
            POLICY_QUEUE_DEPTH_CURRENT: self.DEEP_QUEUE,
            LINK_UTILIZATION: self.HOT_LINK,
        })
        view = ClusterView(4, initial=[0, 1])
        assert scaler.evaluate(bank, 0.01, view, set(), iteration=5) is None

    def test_scale_down_drains_highest_live_rank(self):
        scaler = self._scaler(min_nodes=2)
        bank = _bank(**{DEVICE_BUSY_FRACTION: self.IDLE})
        view = ClusterView(4, initial=[0, 1, 3])
        decision = scaler.evaluate(bank, 0.01, view, set(), iteration=5)
        assert decision is not None and decision.action == "down"
        assert decision.node == 3
        assert decision.inputs["busy_fraction"] == pytest.approx(0.1)

    def test_min_nodes_gates_scale_down(self):
        scaler = self._scaler(min_nodes=2)
        bank = _bank(**{DEVICE_BUSY_FRACTION: self.IDLE})
        view = ClusterView(4, initial=[0, 1])
        assert scaler.evaluate(bank, 0.01, view, set(), iteration=5) is None

    def test_cooldown_spaces_decisions(self):
        scaler = self._scaler(min_nodes=1, cooldown_s=0.05)
        bank = _bank(**{DEVICE_BUSY_FRACTION: self.IDLE})
        view = ClusterView(4, initial=[0, 1, 2])
        assert scaler.evaluate(bank, 0.01, view, set(), iteration=5)
        assert scaler.evaluate(bank, 0.02, view, set(), iteration=6) is None
        bank.get_or_create(DEVICE_BUSY_FRACTION, ()).append(0.07, 0.1)
        assert scaler.evaluate(bank, 0.07, view, set(), iteration=7)

    def test_busy_cluster_makes_no_decision(self):
        scaler = self._scaler()
        bank = _bank(**{DEVICE_BUSY_FRACTION: self.BUSY})
        view = ClusterView(4, initial=[0, 1])
        assert scaler.evaluate(bank, 0.01, view, set(), iteration=5) is None

    def test_policy_coerce_forms(self):
        assert AutoscalePolicy.coerce(True) == AutoscalePolicy()
        assert AutoscalePolicy.coerce({"min_nodes": 2}).min_nodes == 2
        policy = AutoscalePolicy(max_nodes=6)
        assert AutoscalePolicy.coerce(policy) is policy
        with pytest.raises(ValueError, match="autoscale must be"):
            AutoscalePolicy.coerce("yes")

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_nodes"):
            AutoscalePolicy(min_nodes=4, max_nodes=2)


# ---------------------------------------------------------------------------
# Elastic driver end to end
# ---------------------------------------------------------------------------

POOL = 4


def _points():
    pts, _, _ = gaussian_mixture(2000, 6, 3, seed=5)
    return pts


def _gmm(iterations=4):
    from repro.apps.gmm import GMMApp

    return GMMApp(_points(), 3, seed=6, max_iterations=iterations)


def _run(app, faults=None, **kwargs):
    config = JobConfig(faults=faults, **kwargs)
    return PRSRuntime(delta_cluster(n_nodes=POOL), config).run(app)


def _canonical_output(result):
    return sorted(result.output.items(), key=lambda kv: repr(kv[0]))


class TestElasticDriver:
    def test_join_mid_run_is_bitwise_identical(self):
        clean_app = _gmm()
        clean = _run(clean_app, initial_nodes=2)
        walk_app = _gmm()
        walk = _run(
            walk_app,
            faults=["join@2:t=0.03", "join@3:t=0.03"],
            initial_nodes=2,
        )

        rec = walk.recovery
        assert rec.joins == 2 and rec.drains == 0
        assert rec.rank_restarts == 0  # joins are planned, not failures
        sizes = [len(e.members) for e in rec.epochs]
        assert sizes[0] == 2 and sizes[-1] == 4
        assert walk.iterations == clean.iterations
        np.testing.assert_array_equal(clean_app.weights, walk_app.weights)
        np.testing.assert_array_equal(clean_app.means, walk_app.means)
        np.testing.assert_array_equal(
            clean_app.covariances, walk_app.covariances
        )
        assert repr(_canonical_output(walk)) == repr(_canonical_output(clean))

    def test_drain_is_planned_and_loss_free(self):
        clean_app = _gmm()
        clean = _run(clean_app, initial_nodes=4)
        drained_app = _gmm()
        drained = _run(drained_app, faults=["drain@3:t=0.03"], initial_nodes=4)

        rec = drained.recovery
        assert rec.drains == 1 and rec.rank_restarts == 0
        assert rec.dead_nodes == ()  # drain is not a death
        assert [e.cause for e in rec.epochs] == ["start", "drain"]
        assert len(rec.epochs[-1].members) == 3
        np.testing.assert_array_equal(clean_app.means, drained_app.means)
        assert repr(_canonical_output(drained)) == repr(
            _canonical_output(clean)
        )

    def test_autoscale_decisions_reach_the_audit_log(self):
        # An over-provisioned 4-rank run with an aggressive scale-down
        # threshold must shrink, and every decision must land in the
        # audit log with the metric values that triggered it.
        app = _gmm(iterations=6)
        result = _run(
            app,
            initial_nodes=4,
            autoscale={
                "min_nodes": 2,
                "scale_down_busy_fraction": 1.1,
                "cooldown_s": 1e-3,
            },
        )
        rec = result.recovery
        assert rec.autoscale_decisions >= 1
        assert any(e.cause == "autoscale-down" for e in rec.epochs)
        assert len(rec.epochs[-1].members) < 4

        decisions = [
            r
            for r in result.trace.audit.records
            if r.kind in ("autoscale-up", "autoscale-down")
        ]
        assert len(decisions) == rec.autoscale_decisions
        for record in decisions:
            assert "busy_fraction" in record.inputs  # the trigger
            assert "time" in record.inputs
            assert record.outputs["members_before"]

    def test_autoscale_requires_sampling(self):
        with pytest.raises(ValueError, match="sample_interval"):
            JobConfig(autoscale=True, sample_interval=None)

    def test_elastic_requires_iterative_app(self):
        from repro.apps.gemv import GemvApp
        from repro.data.synth import random_matrix, random_vector

        app = GemvApp(
            random_matrix(512, 64, seed=1), random_vector(64, seed=2)
        )
        with pytest.raises(ValueError, match="IterativeMapReduceApp"):
            _run(app, initial_nodes=2)

    def test_membership_spans_and_metrics_emitted(self):
        from repro.obs.analyze import membership_from_tracer

        result = _run(_gmm(), faults=["join@2:t=0.03"], initial_nodes=2)
        timeline = membership_from_tracer(result.trace.tracer)
        assert [m["cause"] for m in timeline] == ["join"]
        assert timeline[0]["members"] == "0,1,2"
        counter = result.trace.metrics.get("prs_membership_events_total")
        assert counter is not None and counter.value(action="join") == 1

    def test_recovery_summary_round_trips_membership(self):
        result = _run(
            _gmm(),
            faults=["join@2:t=0.03", "drain@2:t=0.05"],
            initial_nodes=2,
        )
        rec = result.recovery
        assert rec.joins == 1 and rec.drains == 1
        assert len(rec.epochs) == 3
        restored = RecoverySummary.from_dict(rec.to_dict())
        assert restored == rec
        assert restored.epochs[1].cause == "join"
        # and the payload is JSON-clean
        import json

        assert json.loads(json.dumps(rec.to_dict()))["joins"] == 1


class TestAutoscaleCLIParsing:
    def test_parse_autoscale_forms(self):
        from repro.cli import _parse_autoscale

        assert _parse_autoscale(None) is None
        assert _parse_autoscale([""]) is True
        knobs = _parse_autoscale(["min_nodes=2", "scale_up_imbalance=3.5"])
        assert knobs == {"min_nodes": 2, "scale_up_imbalance": 3.5}
        assert isinstance(knobs["min_nodes"], int)

    @pytest.mark.parametrize("bad", [["min_nodes"], ["min_nodes=lots"]])
    def test_parse_autoscale_rejects_malformed(self, bad):
        from repro.cli import _parse_autoscale

        with pytest.raises(SystemExit, match="--autoscale"):
            _parse_autoscale(bad)
