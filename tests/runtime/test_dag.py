"""Tests for the task-DAG runtime: graph validation, the linear-pipeline
equivalence guarantee, the contiguous min-cut, and fault-plan determinism
of the two graph-driven policies."""

from __future__ import annotations

import pickle

import pytest

from repro.apps.cmeans import CMeansApp
from repro.apps.gmm import GMMApp
from repro.data.synth import gaussian_mixture
from repro.runtime.dag import (
    DataEdge,
    GraphValidationError,
    TaskGraph,
    TaskNode,
    contiguous_min_cut,
)
from repro.runtime.job import JobConfig
from repro.runtime.phases import ITERATION_PHASES
from repro.runtime.prs import PRSRuntime

from tests.helpers import CountdownApp


def graph_of(names, edges):
    g = TaskGraph()
    for name in names:
        g.add_node(TaskNode(name))
    for src, dst in edges:
        g.add_edge(src, dst)
    return g


class TestGraphValidation:
    def test_cycle_rejected(self):
        g = graph_of("abc", [("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(GraphValidationError, match="cycle"):
            g.validate()

    def test_self_edge_rejected(self):
        with pytest.raises(GraphValidationError, match="self"):
            DataEdge("a", "a")

    def test_dangling_edge_rejected(self):
        g = graph_of("ab", [("a", "b")])
        g.add_edge("b", "ghost")
        with pytest.raises(GraphValidationError, match="ghost"):
            g.validate()

    def test_duplicate_node_rejected(self):
        g = graph_of("a", [])
        with pytest.raises(GraphValidationError, match="duplicate"):
            g.add_node(TaskNode("a"))

    def test_negative_edge_bytes_rejected(self):
        with pytest.raises(GraphValidationError, match="negative"):
            DataEdge("a", "b", nbytes=-1.0)

    def test_topo_order_respects_dependencies(self):
        g = graph_of("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        order = [n.name for n in g.topo_order()]
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_topo_order_is_deterministic_insertion_order(self):
        # Independent ready nodes run in insertion order — the property
        # that keeps the DAG executor bitwise-identical to the pipeline.
        g = graph_of(["z", "m", "a"], [])
        assert [n.name for n in g.topo_order()] == ["z", "m", "a"]

    def test_linear_builds_a_chain_with_edge_bytes(self):
        phases = [cls() for cls in ITERATION_PHASES]
        g = TaskGraph.linear(phases, edge_bytes={("map", "combine"): 64.0})
        assert len(g) == len(phases)
        assert [e.label for e in g.edges] == [
            f"{a.name}->{b.name}" for a, b in zip(phases, phases[1:])
        ]
        assert g.edge("map", "combine").nbytes == 64.0
        assert g.edge("broadcast", "map").nbytes is None


class TestContiguousMinCut:
    def test_balanced_split_no_slide_needed(self):
        ranges, cut = contiguous_min_cut(
            [1.0] * 4, [5.0, 1.0, 5.0], [0.5, 0.5], slack=0
        )
        assert ranges == [(0, 2), (2, 4)]
        assert cut == 1.0

    def test_boundary_slides_to_cheaper_edge(self):
        # Nominal boundary at 2 costs 9; sliding one block right costs 1.
        ranges, cut = contiguous_min_cut(
            [1.0] * 4, [5.0, 9.0, 1.0], [0.5, 0.5], slack=1
        )
        assert ranges == [(0, 3), (3, 4)]
        assert cut == 1.0

    def test_single_device_has_no_cut(self):
        ranges, cut = contiguous_min_cut([1.0, 2.0], [7.0], [1.0])
        assert ranges == [(0, 2)]
        assert cut == 0.0

    def test_edge_count_must_match(self):
        with pytest.raises(GraphValidationError, match="needs 1 edge"):
            contiguous_min_cut([1.0, 1.0], [1.0, 1.0], [0.5, 0.5])


def run_job(app_factory, delta4, **config_kwargs):
    return PRSRuntime(delta4, JobConfig(**config_kwargs)).run(app_factory())


def cmeans_app():
    pts, _, _ = gaussian_mixture(600, 8, 3, seed=11)
    return CMeansApp(pts, 3, seed=11, max_iterations=4)


def gmm_app():
    pts, _, _ = gaussian_mixture(600, 8, 3, seed=11)
    return GMMApp(pts, 3, seed=11, max_iterations=4)


class _LegacyPipeline:
    """The pre-refactor linear loop, bypassing the TaskGraph executor."""

    def run(self, ctx):
        for phase_cls in ITERATION_PHASES:
            yield from phase_cls().run(ctx)


class TestLinearEquivalence:
    """The DAG executor reproduces the linear pipeline bit for bit."""

    @pytest.mark.parametrize("app_factory", [cmeans_app, gmm_app])
    def test_outputs_and_spans_match_legacy_pipeline(
        self, app_factory, delta4, monkeypatch
    ):
        dag_result = run_job(app_factory, delta4)
        monkeypatch.setattr(
            "repro.runtime.prs.iteration_graph", lambda ctx: _LegacyPipeline()
        )
        legacy_result = run_job(app_factory, delta4)
        assert pickle.dumps(dag_result.output) == pickle.dumps(
            legacy_result.output
        )
        assert dag_result.makespan == legacy_result.makespan
        assert dag_result.trace.phase_spans == legacy_result.trace.phase_spans

    def test_dag_attrs_present_on_phase_spans(self, delta4):
        result = run_job(lambda: CountdownApp(n=2000), delta4)
        spans = [
            s
            for s in result.trace.tracer.find(category="phase")
            if s.attrs.get("iteration") == 0 and s.name == "map"
        ]
        assert spans
        for span in spans:
            assert span.attrs["dag_node"] == "map"
            assert span.attrs["dag_edge"] == "broadcast->map"
            assert span.attrs["dag_edge_bytes"] > 0


class TestGraphPolicyFaultDeterminism:
    """The new policies keep faulted runs bitwise identical to fault-free
    runs, and fault plans are deterministic across repeats."""

    @pytest.mark.parametrize("policy", ["affinity", "graph-partition"])
    def test_faulted_output_matches_fault_free(self, policy, delta4):
        clean = run_job(gmm_app, delta4, scheduling=policy)
        faulted = run_job(
            gmm_app, delta4, scheduling=policy, faults="gpu_kill@1:t=0.02"
        )
        assert faulted.recovery is not None
        assert faulted.recovery.faults_injected == 1
        assert pickle.dumps(clean.output) == pickle.dumps(faulted.output)

    @pytest.mark.parametrize("policy", ["affinity", "graph-partition"])
    def test_fault_plan_is_deterministic(self, policy, delta4):
        kwargs = dict(
            scheduling=policy, faults="cpu_hiccup@0:t=0.01", fault_seed=3
        )
        first = run_job(gmm_app, delta4, **kwargs)
        second = run_job(gmm_app, delta4, **kwargs)
        assert pickle.dumps(first.output) == pickle.dumps(second.output)
        assert first.makespan == second.makespan
        assert first.trace.phase_spans == second.trace.phase_spans

    @pytest.mark.parametrize("policy", ["affinity", "graph-partition"])
    def test_decisions_are_audited(self, policy, delta4):
        result = run_job(gmm_app, delta4, scheduling=policy)
        kinds = {d.kind for d in result.trace.audit.records}
        expected = (
            "affinity-place" if policy == "affinity" else "graph-partition-cut"
        )
        assert expected in kinds
