"""Tests for input partitioning and the shuffle machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.partition import (
    default_partition_count,
    partition_range,
    weighted_partition,
)
from repro.runtime.shuffle import (
    apply_combiner,
    bucket_of,
    group_by_key,
    hash_partition,
    sort_pairs,
)


class TestPartitionRange:
    def test_exact_cover(self):
        parts = partition_range(10, 3)
        assert parts == [(0, 4), (4, 7), (7, 10)]

    def test_sizes_differ_by_at_most_one(self):
        parts = partition_range(100, 7)
        sizes = [hi - lo for lo, hi in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_partitions_than_items(self):
        parts = partition_range(2, 5)
        sizes = [hi - lo for lo, hi in parts]
        assert sum(sizes) == 2
        assert sizes.count(0) == 3

    def test_default_count_is_two_per_node(self):
        """Paper §III.B.2: default partitions = 2 x fat nodes."""
        assert default_partition_count(4) == 8

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(0, 10_000), k=st.integers(1, 64))
    def test_partition_invariants(self, n, k):
        parts = partition_range(n, k)
        assert len(parts) == k
        assert parts[0][0] == 0 and parts[-1][1] == n
        for (lo1, hi1), (lo2, hi2) in zip(parts, parts[1:]):
            assert hi1 == lo2
            assert lo1 <= hi1


class TestWeightedPartition:
    def test_proportional(self):
        parts = weighted_partition(100, [0.25, 0.75])
        assert parts == [(0, 25), (25, 100)]

    def test_rounding_preserves_total(self):
        parts = weighted_partition(10, [1 / 3, 1 / 3, 1 / 3])
        assert sum(hi - lo for lo, hi in parts) == 10

    def test_zero_weight_gets_nothing(self):
        parts = weighted_partition(10, [0.0, 1.0])
        assert parts[0] == (0, 0)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            weighted_partition(10, [0.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            weighted_partition(10, [-1.0, 2.0])

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(0, 5000),
        weights=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=10).filter(
            lambda w: sum(w) > 0
        ),
    )
    def test_weighted_invariants(self, n, weights):
        parts = weighted_partition(n, weights)
        assert len(parts) == len(weights)
        assert parts[0][0] == 0 and parts[-1][1] == n
        total = sum(weights)
        for (lo, hi), w in zip(parts, weights):
            expected = w / total * n
            assert abs((hi - lo) - expected) <= 1.0


class TestShuffle:
    def test_group_by_key(self):
        groups = group_by_key([("a", 1), ("b", 2), ("a", 3)])
        assert groups == {"a": [1, 3], "b": [2]}

    def test_group_preserves_value_order(self):
        groups = group_by_key([("k", i) for i in range(10)])
        assert groups["k"] == list(range(10))

    def test_bucket_deterministic(self):
        assert bucket_of(("center", 3), 8) == bucket_of(("center", 3), 8)

    def test_bucket_in_range(self):
        for key in [0, "abc", (1, 2), 3.5]:
            assert 0 <= bucket_of(key, 5) < 5

    def test_hash_partition_is_a_partition(self):
        pairs = [(i % 7, i) for i in range(100)]
        buckets = hash_partition(pairs, 4)
        flat = [kv for b in buckets for kv in b]
        assert sorted(flat) == sorted(pairs)

    def test_same_key_same_bucket(self):
        pairs = [(i % 3, i) for i in range(30)]
        buckets = hash_partition(pairs, 4)
        for bucket in buckets:
            keys_here = {k for k, _ in bucket}
            for other in buckets:
                if other is bucket:
                    continue
                assert keys_here.isdisjoint({k for k, _ in other})

    def test_apply_combiner(self):
        pairs = [("a", 1), ("a", 2), ("b", 5)]
        combined = apply_combiner(pairs, lambda k, vs: sum(vs))
        assert dict(combined) == {"a": 3, "b": 5}

    def test_sort_pairs_default_order(self):
        pairs = [(3, "c"), (1, "a"), (2, "b")]
        assert [k for k, _ in sort_pairs(pairs)] == [1, 2, 3]

    def test_sort_pairs_custom_compare(self):
        pairs = [(1, "a"), (3, "c"), (2, "b")]
        ordered = sort_pairs(pairs, compare=lambda a, b: b - a)  # descending
        assert [k for k, _ in ordered] == [3, 2, 1]

    @settings(max_examples=30, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 20), st.integers()), max_size=200
        ),
        buckets=st.integers(1, 16),
    )
    def test_partition_grouping_roundtrip(self, pairs, buckets):
        """Bucketing then grouping must equal grouping directly."""
        direct = group_by_key(pairs)
        via_buckets = {}
        for bucket in hash_partition(pairs, buckets):
            via_buckets.update(group_by_key(bucket))
        assert direct == via_buckets
