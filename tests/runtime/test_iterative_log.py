"""Tests for iteration bookkeeping and convergence helpers."""

import numpy as np
import pytest

from repro.runtime.iterative import (
    IterationLog,
    IterationStats,
    max_membership_delta,
    relative_change,
)


def make_log(durations):
    log = IterationLog()
    t = 0.0
    for i, d in enumerate(durations):
        log.add(IterationStats(index=i, start=t, end=t + d,
                               network_bytes=100.0, map_pairs=10))
        t += d
    return log


class TestIterationStats:
    def test_duration(self):
        s = IterationStats(0, 1.0, 3.5, 0.0, 0)
        assert s.duration == 2.5


class TestIterationLog:
    def test_total_time(self):
        assert make_log([1.0, 2.0, 3.0]).total_time == pytest.approx(6.0)

    def test_steady_state_excludes_first(self):
        """The paper's convention: one-off staging excluded."""
        log = make_log([10.0, 2.0, 2.0, 2.0])
        assert log.steady_state_time() == pytest.approx(2.0)

    def test_steady_state_single_iteration(self):
        assert make_log([5.0]).steady_state_time() == pytest.approx(5.0)

    def test_first_iteration_overhead(self):
        log = make_log([10.0, 2.0, 2.0])
        assert log.first_iteration_overhead() == pytest.approx(8.0)

    def test_overhead_never_negative(self):
        log = make_log([1.0, 5.0, 5.0])
        assert log.first_iteration_overhead() == 0.0

    def test_len(self):
        assert len(make_log([1.0, 1.0])) == 2


class TestConvergenceHelpers:
    def test_max_membership_delta(self):
        u1 = np.array([[0.5, 0.5], [1.0, 0.0]])
        u2 = np.array([[0.6, 0.4], [1.0, 0.0]])
        assert max_membership_delta(u1, u2) == pytest.approx(0.1)

    def test_membership_shape_check(self):
        with pytest.raises(ValueError):
            max_membership_delta(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_relative_change(self):
        old = np.array([3.0, 4.0])  # norm 5
        new = np.array([3.0, 4.5])
        assert relative_change(old, new) == pytest.approx(0.1)

    def test_relative_change_from_zero(self):
        assert relative_change(np.zeros(2), np.array([1.0, 0.0])) == 1.0
