"""Tests for the phase pipeline and per-phase time breakdowns."""

from __future__ import annotations

import pytest

from repro.runtime.job import JobConfig
from repro.runtime.phases import ITERATION_PHASES
from repro.runtime.prs import PRSRuntime

from tests.helpers import CombinerModSumApp, CountdownApp, ModSumApp

PHASE_ORDER = [
    "broadcast",
    "map",
    "combine",
    "shuffle",
    "reduce",
    "gather",
    "convergence",
]


def phase_sum(result, rank: int = 0) -> float:
    return sum(
        seconds
        for per_iter in result.phase_breakdown(rank=rank).values()
        for seconds in per_iter.values()
    )


class TestBreakdownTotals:
    def test_iterative_sums_match_makespan(self, delta4):
        result = PRSRuntime(delta4, JobConfig()).run(CountdownApp(n=2000))
        assert phase_sum(result) == pytest.approx(result.makespan, rel=0.01)

    def test_non_iterative_sums_match_makespan(self, delta4):
        result = PRSRuntime(delta4, JobConfig()).run(ModSumApp(n=1000))
        assert phase_sum(result) == pytest.approx(result.makespan, rel=0.01)

    def test_every_rank_sums_to_its_finish_time(self, delta4):
        result = PRSRuntime(delta4, JobConfig()).run(CountdownApp(n=2000))
        for rank in range(delta4.n_nodes):
            spans = result.trace.phases(rank=rank)
            assert spans, f"rank {rank} recorded no phases"
            finish = max(s.end for s in spans)
            assert phase_sum(result, rank=rank) == pytest.approx(finish)

    def test_phase_totals_match_breakdown(self, delta4):
        result = PRSRuntime(delta4, JobConfig()).run(CountdownApp(n=2000))
        totals = result.phase_totals()
        assert sum(totals.values()) == pytest.approx(phase_sum(result))


class TestSpanStructure:
    def test_setup_recorded_as_iteration_minus_one(self, delta4):
        result = PRSRuntime(delta4, JobConfig()).run(ModSumApp(n=500))
        setup = result.trace.phases(rank=0, iteration=-1)
        assert [s.phase for s in setup] == ["setup"]
        assert setup[0].start == 0.0

    def test_iteration_phases_in_execution_order(self, delta4):
        result = PRSRuntime(delta4, JobConfig()).run(CountdownApp(n=2000))
        for iteration in range(result.iterations):
            names = [
                s.phase for s in result.trace.phases(rank=0, iteration=iteration)
            ]
            assert names == PHASE_ORDER

    def test_spans_are_contiguous_per_rank(self, delta4):
        result = PRSRuntime(delta4, JobConfig()).run(CountdownApp(n=2000))
        spans = sorted(result.trace.phases(rank=0), key=lambda s: s.start)
        for prev, nxt in zip(spans, spans[1:]):
            assert nxt.start == pytest.approx(prev.end)

    def test_pipeline_constant_matches_phase_names(self):
        assert [cls.name for cls in ITERATION_PHASES] == PHASE_ORDER

    def test_map_phase_dominates_compute_heavy_job(self, delta4):
        result = PRSRuntime(delta4, JobConfig()).run(CountdownApp(n=50_000))
        totals = result.phase_totals()
        assert totals["map"] == max(totals.values())

    def test_broadcast_zero_for_non_iterative(self, delta4):
        result = PRSRuntime(delta4, JobConfig()).run(ModSumApp(n=500))
        totals = result.phase_totals()
        assert totals["broadcast"] == 0.0
        assert totals["convergence"] == 0.0


class TestCombinerVisibility:
    def test_combiner_app_still_correct_under_phases(self, delta4):
        app = CombinerModSumApp(n=500, n_keys=3)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert result.output == app.expected_output()
        assert "combine" in result.phase_totals()
