"""Tests for synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.flame import N_CLUSTERS, N_DIMS, N_POINTS, lymphocytes_like
from repro.data.synth import (
    gaussian_mixture,
    random_matrix,
    random_vector,
    text_corpus,
)


class TestGaussianMixture:
    def test_shapes(self):
        pts, labels, centers = gaussian_mixture(500, 8, 3)
        assert pts.shape == (500, 8)
        assert labels.shape == (500,)
        assert centers.shape == (3, 8)

    def test_labels_in_range(self):
        _, labels, _ = gaussian_mixture(300, 4, 5)
        assert labels.min() >= 0 and labels.max() < 5

    def test_seed_reproducibility(self):
        a = gaussian_mixture(100, 3, 2, seed=9)[0]
        b = gaussian_mixture(100, 3, 2, seed=9)[0]
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = gaussian_mixture(100, 3, 2, seed=1)[0]
        b = gaussian_mixture(100, 3, 2, seed=2)[0]
        assert not np.array_equal(a, b)

    def test_points_near_their_center(self):
        pts, labels, centers = gaussian_mixture(
            2000, 4, 3, seed=0, spread=50.0, cluster_std=1.0
        )
        for j in range(3):
            members = pts[labels == j].astype(np.float64)
            dist = np.linalg.norm(members.mean(axis=0) - centers[j])
            assert dist < 1.0  # sample mean close to the true center

    def test_weights_respected(self):
        _, labels, _ = gaussian_mixture(
            10_000, 2, 2, seed=3, weights=np.array([0.9, 0.1])
        )
        frac = np.mean(labels == 0)
        assert 0.85 < frac < 0.95

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            gaussian_mixture(10, 2, 2, weights=np.array([0.5, 0.5, 0.5]))
        with pytest.raises(ValueError):
            gaussian_mixture(10, 2, 2, weights=np.array([-1.0, 2.0]))

    def test_dtype(self):
        pts, _, _ = gaussian_mixture(10, 2, 2)
        assert pts.dtype == np.float32


class TestMatrixVector:
    def test_matrix_shape_and_range(self):
        a = random_matrix(10, 20, seed=1)
        assert a.shape == (10, 20)
        assert np.all(np.abs(a) <= 1.0)

    def test_vector(self):
        v = random_vector(64, seed=2)
        assert v.shape == (64,)

    def test_reproducible(self):
        np.testing.assert_array_equal(random_matrix(5, 5, 3), random_matrix(5, 5, 3))


class TestTextCorpus:
    def test_shape(self):
        docs = text_corpus(10, words_per_doc=50, seed=0)
        assert len(docs) == 10
        assert all(len(d) == 50 for d in docs)

    def test_zipf_skew(self):
        """Common words must dominate — that's the word-count workload."""
        docs = text_corpus(50, words_per_doc=200, seed=1)
        from collections import Counter

        counts = Counter(w for d in docs for w in d)
        top = counts.most_common(1)[0][1]
        assert top > sum(counts.values()) / len(counts) * 3


class TestLymphocytesLike:
    def test_paper_shape(self):
        pts, labels, centers = lymphocytes_like()
        assert pts.shape == (N_POINTS, N_DIMS) == (20054, 4)
        assert centers.shape == (N_CLUSTERS, N_DIMS)
        assert set(np.unique(labels)) == set(range(5))

    def test_fluorescence_range(self):
        pts, _, _ = lymphocytes_like()
        assert pts.min() >= 0.0 and pts.max() <= 1023.0

    def test_unequal_populations(self):
        _, labels, _ = lymphocytes_like()
        counts = np.bincount(labels)
        assert counts.max() > 2 * counts.min()

    def test_clusters_overlap_but_are_learnable(self):
        """The set must be hard (overlapping) yet structured: nearest-true-
        center classification should sit well between chance and perfect."""
        pts, labels, centers = lymphocytes_like()
        d2 = (
            np.sum(pts.astype(np.float64) ** 2, axis=1)[:, None]
            - 2.0 * pts.astype(np.float64) @ centers.T.astype(np.float64)
            + np.sum(centers.astype(np.float64) ** 2, axis=1)[None, :]
        )
        acc = np.mean(np.argmin(d2, axis=1) == labels)
        assert 0.5 < acc < 0.999

    def test_reproducible(self):
        np.testing.assert_array_equal(
            lymphocytes_like(seed=5)[0], lymphocytes_like(seed=5)[0]
        )
