"""Tests for dataset persistence."""

import numpy as np
import pytest

from repro.data.io import (
    load_corpus,
    load_lines,
    load_points,
    save_corpus,
    save_lines,
    save_points,
)
from repro.data.synth import gaussian_mixture, text_corpus


class TestPointsRoundtrip:
    def test_full_roundtrip(self, tmp_path):
        pts, labels, centers = gaussian_mixture(100, 4, 3, seed=1)
        path = tmp_path / "set.npz"
        save_points(path, pts, labels, centers)
        p2, l2, c2 = load_points(path)
        np.testing.assert_array_equal(p2, pts)
        np.testing.assert_array_equal(l2, labels)
        np.testing.assert_array_equal(c2, centers)

    def test_points_only(self, tmp_path):
        pts = np.ones((5, 2), dtype=np.float32)
        path = tmp_path / "p.npz"
        save_points(path, pts)
        p2, l2, c2 = load_points(path)
        np.testing.assert_array_equal(p2, pts)
        assert l2 is None and c2 is None

    def test_dtype_preserved(self, tmp_path):
        pts = np.ones((5, 2), dtype=np.float32)
        path = tmp_path / "p.npz"
        save_points(path, pts)
        assert load_points(path)[0].dtype == np.float32

    def test_label_length_checked(self, tmp_path):
        with pytest.raises(ValueError, match="labels"):
            save_points(tmp_path / "x.npz", np.ones((5, 2)), np.zeros(3))

    def test_center_shape_checked(self, tmp_path):
        with pytest.raises(ValueError, match="centers"):
            save_points(
                tmp_path / "x.npz", np.ones((5, 2)), centers=np.ones((3, 4))
            )

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(ValueError, match="format"):
            load_points(path)


class TestLinesAndCorpus:
    def test_lines_roundtrip(self, tmp_path):
        lines = ["alpha", "beta gamma", ""]
        path = tmp_path / "log.txt"
        save_lines(path, lines)
        assert load_lines(path) == lines

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        save_lines(path, [])
        assert load_lines(path) == []

    def test_corpus_roundtrip(self, tmp_path):
        docs = text_corpus(8, words_per_doc=20, seed=2)
        path = tmp_path / "corpus.txt"
        save_corpus(path, docs)
        assert load_corpus(path) == docs

    def test_corpus_rejects_whitespace_tokens(self, tmp_path):
        with pytest.raises(ValueError, match="whitespace"):
            save_corpus(tmp_path / "c.txt", [["bad token"]])

    def test_loganalysis_via_files(self, tmp_path):
        """End-to-end: synthesize a log, persist, reload, analyse."""
        from repro.apps.loganalysis import LogAnalysisApp, synthesize_log

        lines = synthesize_log(50, seed=3)
        path = tmp_path / "access.log"
        save_lines(path, lines)
        app = LogAnalysisApp(load_lines(path))
        assert app.n_items() == 50
        assert app.reference() == LogAnalysisApp(lines).reference()
