"""Tests for the Table 3 baseline cost models."""

import pytest

from repro.baselines import (
    MahoutBaseline,
    MpiCpuBaseline,
    MpiGpuBaseline,
    WorkloadSpec,
)
from repro.core.intensity import cmeans_intensity, gemv_intensity


def cmeans_workload(n_points, d=100, m=10, iterations=10):
    return WorkloadSpec(
        total_bytes=n_points * d * 4.0,
        intensity=cmeans_intensity(m),
        iterations=iterations,
        state_bytes=m * d * 8.0,
        resident=True,
    )


class TestWorkloadSpec:
    def test_from_app(self):
        from repro.apps.cmeans import CMeansApp
        from repro.data.synth import gaussian_mixture

        pts, _, _ = gaussian_mixture(1000, 10, 3, seed=0)
        app = CMeansApp(pts, 3)
        spec = WorkloadSpec.from_app(app, iterations=5)
        assert spec.total_bytes == pytest.approx(1000 * 10 * 4)
        assert spec.iterations == 5
        assert spec.resident

    def test_flops(self):
        w = cmeans_workload(1000)
        assert w.flops() == pytest.approx(50.0 * w.total_bytes)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(total_bytes=0.0, intensity=gemv_intensity())


class TestTable3Ordering:
    """The core qualitative claim of Table 3:
    MPI/GPU < MPI/CPU << Mahout, at every size."""

    @pytest.mark.parametrize("n_points", [200_000, 400_000, 800_000])
    def test_runtime_ordering(self, delta4, n_points):
        w = cmeans_workload(n_points)
        t_gpu = MpiGpuBaseline(delta4).run_seconds(w)
        t_cpu = MpiCpuBaseline(delta4).run_seconds(w)
        t_mahout = MahoutBaseline(delta4).run_seconds(w)
        assert t_gpu < t_cpu < t_mahout
        # Mahout is "two orders of magnitude" above the CPU MPI runtime.
        assert t_mahout > 10 * t_cpu

    def test_gpu_cpu_ratio_shape(self, delta4):
        """Paper: MPI/CPU is ~12-14x MPI/GPU for C-means (0.53 vs 6.41)."""
        w = cmeans_workload(400_000)
        ratio = (
            MpiCpuBaseline(delta4).run_seconds(w)
            / MpiGpuBaseline(delta4).run_seconds(w)
        )
        assert 4.0 < ratio < 30.0

    def test_mahout_mostly_fixed_cost(self, delta4):
        """541 s at 200k vs 687 s at 800k: 4x data, < 1.3x time."""
        t_small = MahoutBaseline(delta4).run_seconds(cmeans_workload(200_000))
        t_large = MahoutBaseline(delta4).run_seconds(cmeans_workload(800_000))
        assert t_large / t_small < 1.5

    def test_mpi_runtimes_scale_with_data(self, delta4):
        t_small = MpiGpuBaseline(delta4).run_seconds(cmeans_workload(200_000))
        t_large = MpiGpuBaseline(delta4).run_seconds(cmeans_workload(800_000))
        assert t_large > 3.0 * t_small


class TestModelDetails:
    def test_resident_workload_uses_dram_arm(self, delta4):
        resident = cmeans_workload(400_000)
        staged = WorkloadSpec(
            total_bytes=resident.total_bytes,
            intensity=resident.intensity,
            iterations=resident.iterations,
            state_bytes=resident.state_bytes,
            resident=False,
        )
        model = MpiGpuBaseline(delta4)
        assert model.run_seconds(resident) < model.run_seconds(staged)

    def test_staging_flag_adds_time(self, delta4):
        w = cmeans_workload(400_000)
        base = MpiGpuBaseline(delta4, include_staging=False).run_seconds(w)
        staged = MpiGpuBaseline(delta4, include_staging=True).run_seconds(w)
        assert staged > base

    def test_single_node_has_no_comm(self):
        from repro.hardware import delta_cluster

        one = delta_cluster(n_nodes=1)
        w = cmeans_workload(100_000, iterations=1)
        t = MpiGpuBaseline(one).run_seconds(w)
        node_flops = w.flops()
        gpu = one.nodes[0].gpu
        rate = gpu.attainable_gflops(500.0, staged=False)
        assert t == pytest.approx(node_flops / (rate * 1e9))

    def test_gflops_per_node_bounded_by_peak(self, delta4):
        w = cmeans_workload(800_000)
        for model in (MpiGpuBaseline(delta4), MpiCpuBaseline(delta4)):
            g = model.gflops_per_node(w)
            assert 0 < g <= delta4.nodes[0].peak_gflops

    def test_mahout_efficiency_validated(self, delta4):
        with pytest.raises(ValueError):
            MahoutBaseline(delta4, jvm_efficiency=2.0)
