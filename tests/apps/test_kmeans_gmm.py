"""Tests for K-means and GMM EM applications."""

import numpy as np
import pytest

from repro.apps.gmm import GMMApp, gmm_responsibilities, log_gaussian_pdf
from repro.apps.kmeans import KMeansApp, nearest_centers
from repro.data.synth import gaussian_mixture
from repro.runtime.api import Block
from repro.runtime.shuffle import group_by_key


def drive(app, iterations=None, block=128):
    limit = iterations if iterations is not None else app.max_iterations
    done = 0
    for _ in range(limit):
        pairs = []
        for lo in range(0, app.n_items(), block):
            pairs.extend(app.cpu_map(Block(lo, min(lo + block, app.n_items()))))
        reduced = {k: app.cpu_reduce(k, vs) for k, vs in group_by_key(pairs).items()}
        app.update(reduced)
        done += 1
        if iterations is None and app.converged:
            break
    return done


class TestKMeans:
    def test_sse_monotone_decreasing(self):
        pts, _, _ = gaussian_mixture(500, 4, 3, seed=1)
        app = KMeansApp(pts, 3, seed=2)
        drive(app, iterations=6)
        hist = app.sse_history
        assert all(b <= a * (1 + 1e-9) for a, b in zip(hist, hist[1:]))

    def test_converges_and_recovers_centers(self):
        pts, _, true_centers = gaussian_mixture(2000, 3, 3, seed=4, spread=25.0)
        app = KMeansApp(pts, 3, seed=5, max_iterations=40)
        drive(app)
        assert app.converged
        for tc in true_centers.astype(np.float64):
            assert np.min(np.linalg.norm(app.centers - tc, axis=1)) < 1.0

    def test_block_invariance(self):
        pts, _, _ = gaussian_mixture(400, 3, 2, seed=6)

        def run(bs):
            app = KMeansApp(pts, 2, seed=3)
            drive(app, iterations=4, block=bs)
            return app.centers

        np.testing.assert_allclose(run(50), run(173), rtol=1e-9)

    def test_labels_are_nearest(self):
        pts, _, _ = gaussian_mixture(200, 2, 2, seed=7)
        app = KMeansApp(pts, 2, seed=7)
        drive(app, iterations=3)
        np.testing.assert_array_equal(
            app.labels(), nearest_centers(pts, app.centers)
        )

    def test_empty_cluster_keeps_center(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1]], dtype=np.float32)
        app = KMeansApp(pts, 2, seed=0)
        # Force a far-away center that will capture no points.
        app.centers[1] = np.array([100.0, 100.0])
        before = app.centers[1].copy()
        drive(app, iterations=1)
        np.testing.assert_array_equal(app.centers[1], before)

    def test_kmeans_intensity_below_cmeans(self):
        pts, _, _ = gaussian_mixture(100, 2, 2, seed=0)
        from repro.apps.cmeans import CMeansApp

        k = KMeansApp(pts, 2)
        c = CMeansApp(pts, 2)
        assert k.intensity().at(1e6) < c.intensity().at(1e6)


class TestGaussianPdf:
    def test_standard_normal_at_origin(self):
        # log N(0 | 0, I) in 2-D = -log(2 pi)
        val = log_gaussian_pdf(
            np.zeros((1, 2)), np.zeros(2), np.eye(2)
        )
        assert val[0] == pytest.approx(-np.log(2 * np.pi))

    def test_matches_scipy(self):
        from scipy.stats import multivariate_normal

        rng = np.random.default_rng(3)
        mean = rng.normal(size=3)
        a = rng.normal(size=(3, 3))
        cov = a @ a.T + np.eye(3)
        x = rng.normal(size=(20, 3))
        ours = log_gaussian_pdf(x, mean, cov)
        ref = multivariate_normal(mean, cov).logpdf(x)
        np.testing.assert_allclose(ours, ref, rtol=1e-9)


class TestGMM:
    def test_responsibilities_sum_to_one(self):
        pts, _, _ = gaussian_mixture(200, 3, 2, seed=1)
        app = GMMApp(pts, 2, seed=1)
        gamma, ll = gmm_responsibilities(
            pts.astype(np.float64), app.weights, app.means, app.covariances
        )
        np.testing.assert_allclose(gamma.sum(axis=1), 1.0, rtol=1e-9)
        assert np.isfinite(ll)

    def test_loglik_monotone_nondecreasing(self):
        """EM guarantee: log-likelihood never drops."""
        pts, _, _ = gaussian_mixture(600, 3, 3, seed=2, spread=8.0)
        app = GMMApp(pts, 3, seed=2)
        drive(app, iterations=8)
        hist = app.loglik_history
        assert len(hist) == 8
        assert all(b >= a - 1e-6 * abs(a) for a, b in zip(hist, hist[1:]))

    def test_weights_stay_normalized(self):
        pts, _, _ = gaussian_mixture(300, 2, 3, seed=3)
        app = GMMApp(pts, 3, seed=3)
        drive(app, iterations=5)
        assert app.weights.sum() == pytest.approx(1.0)
        assert np.all(app.weights >= 0)

    def test_covariances_positive_definite(self):
        pts, _, _ = gaussian_mixture(300, 4, 2, seed=4)
        app = GMMApp(pts, 2, seed=4)
        drive(app, iterations=5)
        for cov in app.covariances:
            eigvals = np.linalg.eigvalsh(cov)
            assert np.all(eigvals > 0)

    def test_recovers_mixture_parameters(self):
        pts, labels, true_centers = gaussian_mixture(
            3000, 2, 2, seed=5, spread=12.0, weights=np.array([0.7, 0.3])
        )
        app = GMMApp(pts, 2, seed=6, max_iterations=50)
        drive(app)
        # match components to truth by nearest mean
        order = [
            int(np.argmin(np.linalg.norm(app.means - tc, axis=1)))
            for tc in true_centers.astype(np.float64)
        ]
        assert sorted(order) == [0, 1]
        weights = app.weights[order]
        np.testing.assert_allclose(weights, [0.7, 0.3], atol=0.05)

    def test_converges_by_tolerance(self):
        pts, _, _ = gaussian_mixture(500, 2, 2, seed=7, spread=15.0)
        app = GMMApp(pts, 2, seed=7, tolerance=1e-6, max_iterations=100)
        iters = drive(app)
        assert app.converged
        assert iters < 100

    def test_block_invariance(self):
        pts, _, _ = gaussian_mixture(300, 3, 2, seed=8)

        def run(bs):
            app = GMMApp(pts, 2, seed=8)
            drive(app, iterations=3, block=bs)
            return app.means

        np.testing.assert_allclose(run(64), run(97), rtol=1e-7)

    def test_combiner_associative(self):
        pts, _, _ = gaussian_mixture(200, 3, 2, seed=9)
        app = GMMApp(pts, 2, seed=9)
        a = [v for k, v in app.cpu_map(Block(0, 100)) if k == 0]
        b = [v for k, v in app.cpu_map(Block(100, 200)) if k == 0]
        direct = app.cpu_reduce(0, a + b)
        staged = app.cpu_reduce(0, [app.combiner(0, a), app.combiner(0, b)])
        assert direct[0] == pytest.approx(staged[0])
        np.testing.assert_allclose(direct[1], staged[1], rtol=1e-12)
        np.testing.assert_allclose(direct[2], staged[2], rtol=1e-12)

    def test_gmm_intensity_matches_table5(self):
        pts, _, _ = gaussian_mixture(100, 60, 2, seed=0)
        app = GMMApp(pts, 10, seed=0)
        assert app.intensity().at(1e6) == 11.0 * 10 * 60
