"""Tests for the batched FFT application."""

import numpy as np
import pytest

from repro.apps.fft import FftApp
from repro.core.analytic import Regime, workload_split
from repro.runtime.api import Block
from repro.runtime.shuffle import group_by_key


def run_map_all(app, block_size=16):
    pairs = []
    for lo in range(0, app.n_items(), block_size):
        pairs.extend(app.cpu_map(Block(lo, min(lo + block_size, app.n_items()))))
    return {k: app.cpu_reduce(k, vs) for k, vs in group_by_key(pairs).items()}


class TestFftApp:
    def test_matches_numpy_reference(self):
        app = FftApp.random(64, signal_length=256, seed=1)
        spectra = app.assemble(run_map_all(app))
        np.testing.assert_allclose(spectra, app.reference(), rtol=1e-3, atol=1e-2)

    def test_intensity_formula(self):
        app = FftApp.random(4, signal_length=1024)
        assert app.intensity().at(1e6) == pytest.approx(5.0 * 10.0 / 8.0)

    def test_middle_regime_on_delta(self, delta):
        """FFT lands in the mixed-split middle of Figure 4."""
        app = FftApp.random(4, signal_length=1024)
        d = workload_split(delta, app.intensity(), staged=True)
        assert d.regime is Regime.BETWEEN_RIDGES
        assert 0.3 < d.p < 0.99  # genuinely mixed

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            FftApp(np.zeros((4, 100), dtype=np.complex64))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            FftApp(np.zeros(16, dtype=np.complex64))

    def test_assemble_detects_gaps(self):
        app = FftApp.random(8, signal_length=4)
        with pytest.raises(RuntimeError, match="assembled"):
            app.assemble({(0, 4): np.zeros((4, 4), dtype=np.complex64)})

    def test_runs_on_prs(self, delta4):
        from repro.runtime.job import JobConfig
        from repro.runtime.prs import PRSRuntime

        app = FftApp.random(128, signal_length=128, seed=2)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        spectra = app.assemble(result.output)
        np.testing.assert_allclose(
            spectra, app.reference(), rtol=1e-3, atol=1e-2
        )
        # mixed split: both devices contribute
        assert 0.3 < result.splits[0].p < 0.99
