"""Tests for the 1-D Jacobi stencil application."""

import numpy as np
import pytest

from repro.apps.stencil import Jacobi1DApp, jacobi_reference
from repro.runtime.api import Block
from repro.runtime.job import JobConfig
from repro.runtime.prs import PRSRuntime
from repro.runtime.shuffle import group_by_key


def drive(app, iterations=None, block=32):
    limit = iterations if iterations is not None else app.max_iterations
    done = 0
    for _ in range(limit):
        pairs = []
        for lo in range(0, app.n_items(), block):
            pairs.extend(app.cpu_map(Block(lo, min(lo + block, app.n_items()))))
        reduced = {k: app.cpu_reduce(k, v) for k, v in group_by_key(pairs).items()}
        app.update(reduced)
        done += 1
        if iterations is None and app.converged:
            break
    return done


class TestJacobiMath:
    def test_matches_serial_reference(self):
        app = Jacobi1DApp.hot_spot(200, max_iterations=10)
        expected = jacobi_reference(app.grid, 10)
        drive(app, iterations=10)
        np.testing.assert_allclose(app.grid, expected, rtol=1e-12)

    def test_block_size_invariance(self):
        def run(block):
            app = Jacobi1DApp.hot_spot(150)
            drive(app, iterations=8, block=block)
            return app.grid

        np.testing.assert_array_equal(run(7), run(64))

    def test_boundaries_fixed(self):
        app = Jacobi1DApp.hot_spot(100)
        drive(app, iterations=15)
        assert app.grid[0] == 100.0
        assert app.grid[-1] == 0.0

    def test_residual_decreases(self):
        app = Jacobi1DApp.hot_spot(100)
        drive(app, iterations=20)
        hist = app.residual_history
        # Jacobi converges monotonically on this problem after warmup.
        assert hist[-1] < hist[1]

    def test_converges_toward_linear_profile(self):
        app = Jacobi1DApp.hot_spot(20, epsilon=1e-10, max_iterations=5000)
        drive(app)
        np.testing.assert_allclose(app.grid, app.steady_state(), atol=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Jacobi1DApp(np.zeros(2))
        with pytest.raises(ValueError):
            Jacobi1DApp(np.zeros((3, 3)))


class TestJacobiOnPRS:
    def test_distributed_matches_serial(self, delta4):
        app = Jacobi1DApp.hot_spot(500, max_iterations=6, epsilon=1e-15)
        expected = jacobi_reference(app.grid, 6)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert result.iterations == 6
        np.testing.assert_allclose(app.grid, expected, rtol=1e-12)

    def test_communication_heavy_profile(self, delta4):
        """gamma ~ 1: the shuffle moves roughly the grid every iteration."""
        app = Jacobi1DApp.hot_spot(40_000, max_iterations=4, epsilon=1e-15)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        grid_bytes = 40_000 * 8
        per_iter = result.network_bytes / result.iterations
        assert per_iter > 0.5 * grid_bytes

    def test_network_aware_model_flags_it(self, delta):
        """The §V network extension identifies the stencil as the workload
        class where co-processing can stop paying on a slow interconnect."""
        from repro.core.network_aware import (
            coprocessing_gain,
            network_aware_split,
        )
        from repro.hardware.cluster import NetworkSpec

        app = Jacobi1DApp.hot_spot(100)
        slow = NetworkSpec(latency=1e-5, bandwidth=0.01)
        split = network_aware_split(
            delta, app.intensity().at(1e6), gamma=1.0, network=slow
        )
        assert split.cpu_network_bound and split.gpu_network_bound
        assert coprocessing_gain(split) == 1.0
