"""Tests for fuzzy C-means: Equations 12-14 and the MapReduce decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cmeans import (
    CMeansApp,
    cmeans_objective,
    cmeans_reference,
    fuzzy_memberships,
)
from repro.data.synth import gaussian_mixture
from repro.runtime.api import Block


@pytest.fixture
def blobs():
    return gaussian_mixture(600, 4, 3, seed=11, spread=12.0)


class TestMemberships:
    def test_rows_sum_to_one(self, blobs):
        pts, _, centers = blobs
        u = fuzzy_memberships(pts, centers)
        np.testing.assert_allclose(u.sum(axis=1), 1.0, rtol=1e-9)

    def test_in_unit_interval(self, blobs):
        pts, _, centers = blobs
        u = fuzzy_memberships(pts, centers)
        assert np.all(u >= 0) and np.all(u <= 1)

    def test_point_on_center_is_hard(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        pts = np.array([[0.0, 0.0]])
        u = fuzzy_memberships(pts, centers)
        np.testing.assert_allclose(u, [[1.0, 0.0]])

    def test_nearest_center_gets_highest_membership(self, blobs):
        pts, _, centers = blobs
        u = fuzzy_memberships(pts, centers)
        d2 = (
            np.sum(pts.astype(np.float64) ** 2, axis=1)[:, None]
            - 2.0 * pts.astype(np.float64) @ centers.T.astype(np.float64)
            + np.sum(centers.astype(np.float64) ** 2, axis=1)[None, :]
        )
        np.testing.assert_array_equal(np.argmax(u, axis=1), np.argmin(d2, axis=1))

    def test_equidistant_point_uniform(self):
        centers = np.array([[-1.0, 0.0], [1.0, 0.0]])
        pts = np.array([[0.0, 5.0]])
        u = fuzzy_memberships(pts, centers)
        np.testing.assert_allclose(u, [[0.5, 0.5]], atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(m=st.floats(1.1, 5.0))
    def test_any_fuzzifier_valid(self, m):
        pts, _, centers = gaussian_mixture(50, 3, 2, seed=0)
        u = fuzzy_memberships(pts, centers, m)
        np.testing.assert_allclose(u.sum(axis=1), 1.0, rtol=1e-9)

    def test_rejects_m_at_most_one(self):
        with pytest.raises(ValueError):
            fuzzy_memberships(np.zeros((2, 2)), np.ones((2, 2)), m=1.0)

    def test_sharper_with_larger_m_toward_uniform(self, blobs):
        """As m -> inf memberships approach uniform; small m -> hard."""
        pts, _, centers = blobs
        u_soft = fuzzy_memberships(pts, centers, m=8.0)
        u_hard = fuzzy_memberships(pts, centers, m=1.2)
        spread_soft = np.mean(np.max(u_soft, axis=1))
        spread_hard = np.mean(np.max(u_hard, axis=1))
        assert spread_hard > spread_soft


class TestObjective:
    def test_reference_iterations_decrease_objective(self, blobs):
        pts, _, _ = blobs
        rng = np.random.default_rng(0)
        idx = rng.choice(pts.shape[0], 3, replace=False)
        centers = pts[idx].astype(np.float64)
        x = pts.astype(np.float64)
        objectives = []
        for _ in range(6):
            objectives.append(cmeans_objective(x, centers))
            u = fuzzy_memberships(x, centers)
            w = u**2.0
            centers = (w.T @ x) / w.sum(axis=0)[:, None]
        assert all(b <= a + 1e-6 for a, b in zip(objectives, objectives[1:]))


class TestMapReduceDecomposition:
    def test_blockwise_partials_equal_global_update(self, blobs):
        """Summed per-block partials must reproduce the serial center
        update exactly (up to float associativity)."""
        pts, _, _ = blobs
        app = CMeansApp(pts, n_clusters=3, seed=4)
        pairs = []
        for lo in range(0, pts.shape[0], 100):
            block = Block(lo, min(lo + 100, pts.shape[0]))
            pairs.extend(app.cpu_map(block))
        from repro.runtime.shuffle import group_by_key

        reduced = {
            k: app.cpu_reduce(k, vs) for k, vs in group_by_key(pairs).items()
        }
        # Serial oracle
        x = pts.astype(np.float64)
        u = fuzzy_memberships(x, app.centers, app.m)
        w = u**app.m
        expected = (w.T @ x) / w.sum(axis=0)[:, None]

        app.update(reduced)
        np.testing.assert_allclose(app.centers, expected, rtol=1e-8)

    def test_block_partition_invariance(self, blobs):
        """Final centers must not depend on how the input was blocked."""
        pts, _, _ = blobs

        def run(block_size):
            app = CMeansApp(pts, n_clusters=3, seed=4)
            for _ in range(3):
                pairs = []
                for lo in range(0, pts.shape[0], block_size):
                    block = Block(lo, min(lo + block_size, pts.shape[0]))
                    pairs.extend(app.cpu_map(block))
                from repro.runtime.shuffle import group_by_key

                reduced = {
                    k: app.cpu_reduce(k, vs)
                    for k, vs in group_by_key(pairs).items()
                }
                app.update(reduced)
            return app.centers

        np.testing.assert_allclose(run(64), run(211), rtol=1e-7)

    def test_combiner_is_associative_with_reduce(self, blobs):
        pts, _, _ = blobs
        app = CMeansApp(pts, n_clusters=3, seed=4)
        pairs = app.cpu_map(Block(0, 200))
        key = 0
        values = [v for k, v in pairs if k == key]
        more = [v for k, v in app.cpu_map(Block(200, 400)) if k == key]
        direct = app.cpu_reduce(key, values + more)
        staged = app.cpu_reduce(
            key, [app.combiner(key, values), app.combiner(key, more)]
        )
        np.testing.assert_allclose(direct[0], staged[0], rtol=1e-12)
        assert direct[1] == pytest.approx(staged[1])


class TestConvergence:
    def test_converges_on_separable_data(self):
        pts, labels, _ = gaussian_mixture(500, 4, 3, seed=2, spread=20.0)
        app = CMeansApp(pts, 3, epsilon=1e-4, max_iterations=60, seed=1)
        reduced_iters = _drive(app)
        assert app.converged
        assert reduced_iters < 60

    def test_objective_history_monotone(self):
        pts, _, _ = gaussian_mixture(400, 4, 3, seed=5)
        app = CMeansApp(pts, 3, seed=3)
        _drive(app, iterations=6)
        hist = app.objective_history
        assert len(hist) >= 2
        assert all(b <= a * (1 + 1e-9) for a, b in zip(hist, hist[1:]))

    def test_matches_reference_implementation(self):
        pts, _, _ = gaussian_mixture(300, 3, 2, seed=8, spread=15.0)
        app = CMeansApp(pts, 2, seed=8, epsilon=1e-12, max_iterations=10)
        _drive(app, iterations=10)
        ref = cmeans_reference(pts, 2, iterations=10, seed=8)
        np.testing.assert_allclose(
            np.sort(app.centers, axis=0), np.sort(ref, axis=0), rtol=1e-6
        )

    def test_recovers_true_centers(self):
        pts, _, true_centers = gaussian_mixture(2000, 3, 3, seed=13, spread=25.0)
        app = CMeansApp(pts, 3, seed=7, max_iterations=40)
        _drive(app)
        # match each found center to its nearest true center
        found = app.centers
        for tc in true_centers.astype(np.float64):
            nearest = np.min(np.linalg.norm(found - tc, axis=1))
            assert nearest < 1.0


class TestValidation:
    def test_rejects_1d_points(self):
        with pytest.raises(ValueError):
            CMeansApp(np.zeros(10), 2)

    def test_rejects_too_many_clusters(self):
        with pytest.raises(ValueError):
            CMeansApp(np.zeros((3, 2)), 5)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            CMeansApp(np.zeros((10, 2)), 2, m=1.0)


def _drive(app, iterations=None):
    """Serial driver mirroring the PRS iteration loop."""
    from repro.runtime.shuffle import group_by_key

    limit = iterations if iterations is not None else app.max_iterations
    done = 0
    for _ in range(limit):
        pairs = []
        for lo in range(0, app.n_items(), 128):
            pairs.extend(app.cpu_map(Block(lo, min(lo + 128, app.n_items()))))
        reduced = {
            k: app.cpu_reduce(k, vs) for k, vs in group_by_key(pairs).items()
        }
        app.update(reduced)
        done += 1
        if iterations is None and app.converged:
            break
    return done
