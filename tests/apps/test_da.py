"""Tests for deterministic-annealing clustering."""

import numpy as np
import pytest

from repro.apps.da import deterministic_annealing
from repro.data.synth import gaussian_mixture


class TestDeterministicAnnealing:
    def test_shapes(self):
        pts, _, _ = gaussian_mixture(300, 3, 4, seed=1)
        centers, labels = deterministic_annealing(pts, 4, seed=1)
        assert centers.shape == (4, 3)
        assert labels.shape == (300,)
        assert labels.min() >= 0 and labels.max() < 4

    def test_recovers_separable_clusters(self):
        pts, true_labels, true_centers = gaussian_mixture(
            1500, 2, 3, seed=2, spread=20.0
        )
        centers, labels = deterministic_annealing(pts, 3, seed=3)
        from repro.analysis.metrics import cluster_overlap

        assert cluster_overlap(labels, true_labels) > 0.98

    def test_insensitive_to_seed(self):
        """DA's selling point: initialization independence.  Different
        seeds must land in (nearly) the same solution on structured data."""
        pts, _, _ = gaussian_mixture(800, 2, 3, seed=4, spread=15.0)
        c1, l1 = deterministic_annealing(pts, 3, seed=10)
        c2, l2 = deterministic_annealing(pts, 3, seed=99)
        from repro.analysis.metrics import adjusted_rand_index

        assert adjusted_rand_index(l1, l2) > 0.99

    def test_all_clusters_populated_on_rich_data(self):
        pts, _, _ = gaussian_mixture(1000, 2, 5, seed=5, spread=10.0)
        _, labels = deterministic_annealing(pts, 5, seed=6)
        assert len(np.unique(labels)) == 5

    def test_validation(self):
        pts, _, _ = gaussian_mixture(50, 2, 2, seed=0)
        with pytest.raises(ValueError):
            deterministic_annealing(pts, 2, cooling=1.5)
        with pytest.raises(ValueError):
            deterministic_annealing(np.zeros(5), 2)
