"""Tests for the GEMV, DGEMM and word-count applications."""

import numpy as np
import pytest

from repro.apps.dgemm import DgemmApp, RowBlockGemmIntensity
from repro.apps.gemv import GemvApp
from repro.apps.wordcount import WordCountApp
from repro.data.synth import random_matrix, random_vector, text_corpus
from repro.runtime.api import Block
from repro.runtime.shuffle import group_by_key


def run_map_all(app, block_size=64):
    pairs = []
    for lo in range(0, app.n_items(), block_size):
        pairs.extend(app.cpu_map(Block(lo, min(lo + block_size, app.n_items()))))
    return {k: app.cpu_reduce(k, vs) for k, vs in group_by_key(pairs).items()}


class TestGemv:
    def test_result_matches_numpy(self):
        a = random_matrix(200, 50, seed=1)
        x = random_vector(50, seed=2)
        app = GemvApp(a, x)
        y = app.assemble(run_map_all(app))
        np.testing.assert_allclose(y, app.reference(), rtol=1e-4)

    def test_block_size_invariance(self):
        a = random_matrix(100, 30, seed=3)
        x = random_vector(30, seed=4)
        app = GemvApp(a, x)
        y1 = app.assemble(run_map_all(app, 7))
        y2 = app.assemble(run_map_all(app, 64))
        # float32 BLAS accumulates in block-size-dependent order
        np.testing.assert_allclose(y1, y2, rtol=1e-3, atol=1e-4)

    def test_gpu_host_map_preferred(self):
        a = random_matrix(10, 5)
        app = GemvApp(a, random_vector(5))
        assert app.has_gpu_host_map()
        # gpu_map dispatches through the host (cuBLAS-style) path
        out = app.gpu_map(Block(0, 10))
        np.testing.assert_allclose(out[0][1], app.cpu_map(Block(0, 10))[0][1])

    def test_intensity_is_two(self):
        app = GemvApp(random_matrix(10, 5), random_vector(5))
        assert app.intensity().at(1e6) == 2.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GemvApp(random_matrix(10, 5), random_vector(7))

    def test_assemble_detects_missing_rows(self):
        a = random_matrix(10, 5)
        app = GemvApp(a, random_vector(5))
        partial = {(0, 5): np.zeros(5)}
        with pytest.raises(RuntimeError, match="assembled"):
            app.assemble(partial)

    def test_item_bytes(self):
        a = random_matrix(10, 5)  # float32
        app = GemvApp(a, random_vector(5))
        assert app.item_bytes() == 20.0


class TestDgemm:
    def test_result_matches_numpy(self):
        a = random_matrix(60, 20, seed=5)
        b = random_matrix(20, 15, seed=6)
        app = DgemmApp(a, b)
        c = app.assemble(run_map_all(app, block_size=16))
        np.testing.assert_allclose(c, app.reference(), rtol=1e-4)

    def test_intensity_grows_with_block(self):
        prof = RowBlockGemmIntensity(n_inner=100, n_out=100)
        assert prof.at(1e7) > prof.at(1e4)

    def test_intensity_saturates_at_half_k(self):
        prof = RowBlockGemmIntensity(n_inner=100, n_out=200)
        assert prof.at(1e15) < 100.0
        assert prof.at(1e15) == pytest.approx(100.0, rel=1e-3)

    def test_inverse_roundtrip(self):
        prof = RowBlockGemmIntensity(n_inner=64, n_out=128)
        for target in (1.0, 10.0, 60.0):
            nbytes = prof.inverse(target)
            assert prof.at(nbytes) == pytest.approx(target, rel=1e-9)

    def test_inverse_beyond_saturation_raises(self):
        prof = RowBlockGemmIntensity(n_inner=64, n_out=128)
        with pytest.raises(ValueError, match="saturates"):
            prof.inverse(64.0)

    def test_minbs_defined_on_delta(self, delta):
        """BLAS3 has a real MinBs (Equation 11) on the Delta GPU."""
        from repro.core.granularity import min_block_size

        a = random_matrix(10, 512, seed=0)
        b = random_matrix(512, 4096, seed=1)
        app = DgemmApp(a, b)
        minbs = min_block_size(delta.gpu, app.intensity())
        assert minbs > 0
        assert app.intensity().at(minbs) == pytest.approx(
            delta.gpu.ridge_point(staged=True), rel=1e-6
        )

    def test_inner_dim_validation(self):
        with pytest.raises(ValueError):
            DgemmApp(random_matrix(5, 4), random_matrix(5, 4))


class TestWordCount:
    def test_counts_match_reference(self):
        docs = text_corpus(30, words_per_doc=80, seed=7)
        app = WordCountApp(docs)
        counts = run_map_all(app, block_size=7)
        assert counts == app.reference()

    def test_combiner_matches_reduce(self):
        docs = text_corpus(10, seed=8)
        app = WordCountApp(docs)
        assert app.has_combiner()
        assert app.combiner("x", [1, 2, 3]) == app.cpu_reduce("x", [1, 2, 3])

    def test_low_intensity_routes_to_cpu(self, delta):
        """Figure 4 low end: word count must get a CPU-dominated split."""
        from repro.core.analytic import workload_split

        docs = text_corpus(5, seed=9)
        app = WordCountApp(docs)
        decision = workload_split(delta, app.intensity(), staged=True)
        assert decision.p > 0.95

    def test_requires_documents(self):
        with pytest.raises(ValueError):
            WordCountApp([])
