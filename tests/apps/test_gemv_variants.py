"""Tests for the column-striped and checkerboard GEMV decompositions."""

import numpy as np
import pytest

from repro.apps.gemv import GemvApp
from repro.apps.gemv_variants import CheckerboardGemvApp, ColumnGemvApp
from repro.data.synth import random_matrix, random_vector
from repro.hardware import delta_cluster
from repro.runtime.api import Block
from repro.runtime.job import JobConfig
from repro.runtime.prs import PRSRuntime
from repro.runtime.shuffle import group_by_key


@pytest.fixture
def problem():
    a = random_matrix(240, 96, seed=11)
    x = random_vector(96, seed=12)
    return a, x


def serial_run(app, block_size=10):
    pairs = []
    for lo in range(0, app.n_items(), block_size):
        pairs.extend(app.cpu_map(Block(lo, min(lo + block_size, app.n_items()))))
    return {k: app.cpu_reduce(k, vs) for k, vs in group_by_key(pairs).items()}


class TestColumnGemv:
    def test_matches_reference(self, problem):
        a, x = problem
        app = ColumnGemvApp(a, x)
        y = app.assemble(serial_run(app))
        np.testing.assert_allclose(y, app.reference(), rtol=1e-3, atol=1e-4)

    def test_single_shared_key(self, problem):
        a, x = problem
        app = ColumnGemvApp(a, x)
        pairs = app.cpu_map(Block(0, 10)) + app.cpu_map(Block(10, 20))
        assert {k for k, _ in pairs} == {"y"}

    def test_items_are_columns(self, problem):
        a, x = problem
        app = ColumnGemvApp(a, x)
        assert app.n_items() == a.shape[1]
        assert app.item_bytes() == a.shape[0] * a.itemsize

    def test_combiner_associativity(self, problem):
        a, x = problem
        app = ColumnGemvApp(a, x)
        v1 = [v for _, v in app.cpu_map(Block(0, 30))]
        v2 = [v for _, v in app.cpu_map(Block(30, 96))]
        direct = app.cpu_reduce("y", v1 + v2)
        staged = app.cpu_reduce(
            "y", [app.combiner("y", v1), app.combiner("y", v2)]
        )
        np.testing.assert_allclose(direct, staged, rtol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ColumnGemvApp(random_matrix(4, 4), random_vector(5))


class TestCheckerboardGemv:
    def test_matches_reference(self, problem):
        a, x = problem
        app = CheckerboardGemvApp(a, x, grid_rows=4, grid_cols=3)
        y = app.assemble(serial_run(app, block_size=5))
        np.testing.assert_allclose(y, app.reference(), rtol=1e-3, atol=1e-4)

    @pytest.mark.parametrize("gr,gc", [(1, 1), (2, 5), (7, 3), (16, 16)])
    def test_any_grid_shape(self, problem, gr, gc):
        a, x = problem
        app = CheckerboardGemvApp(a, x, grid_rows=gr, grid_cols=gc)
        y = app.assemble(serial_run(app, block_size=4))
        np.testing.assert_allclose(y, app.reference(), rtol=1e-3, atol=1e-4)

    def test_tile_numbering(self, problem):
        a, x = problem
        app = CheckerboardGemvApp(a, x, grid_rows=2, grid_cols=3)
        assert app.n_items() == 6
        assert app.tile_of(0) == (0, 0)
        assert app.tile_of(5) == (1, 2)

    def test_each_key_gets_grid_cols_values(self, problem):
        a, x = problem
        app = CheckerboardGemvApp(a, x, grid_rows=3, grid_cols=4)
        pairs = app.cpu_map(Block(0, app.n_items()))
        groups = group_by_key(pairs)
        assert set(groups) == {0, 1, 2}
        assert all(len(v) == 4 for v in groups.values())

    def test_grid_bounds_checked(self, problem):
        a, x = problem
        with pytest.raises(ValueError, match="finer"):
            CheckerboardGemvApp(a, x, grid_rows=10_000, grid_cols=2)

    def test_missing_band_detected(self, problem):
        a, x = problem
        app = CheckerboardGemvApp(a, x, grid_rows=2, grid_cols=2)
        with pytest.raises(RuntimeError, match="row band"):
            app.assemble({0: np.zeros(120)})


class TestDecompositionsAgreeOnPRS:
    def test_all_three_same_result(self, problem, delta4):
        a, x = problem
        reference = a.astype(np.float64) @ x.astype(np.float64)
        for app in (
            GemvApp(a, x),
            ColumnGemvApp(a, x),
            CheckerboardGemvApp(a, x, grid_rows=4, grid_cols=4),
        ):
            result = PRSRuntime(delta4, JobConfig()).run(app)
            y = app.assemble(result.output)
            np.testing.assert_allclose(
                y, reference, rtol=1e-3, atol=1e-4, err_msg=app.name
            )

    def test_shuffle_volume_ordering(self, delta4):
        """Without combiners, row-striped emits the least intermediate
        data, column-striped the most (a full-length partial per task),
        checkerboard in between — the §IV.A.3 reason the paper picked
        row-wise.  (Combiners change the picture: they collapse the
        column decomposition's many same-key partials into one per node,
        which is why the plain apps define them.)"""
        a = random_matrix(2000, 64, seed=13)  # tall: M >> N
        x = random_vector(64, seed=14)

        def no_combiner(cls, *args, **kwargs):
            class Stripped(cls):
                def has_combiner(self):
                    return False

            app = Stripped(*args, **kwargs)
            app.name = cls.name
            return app

        volumes = {}
        results = {}
        for app in (
            no_combiner(GemvApp, a, x),
            no_combiner(CheckerboardGemvApp, a, x, grid_rows=8, grid_cols=4),
            no_combiner(ColumnGemvApp, a, x),
        ):
            result = PRSRuntime(delta4, JobConfig()).run(app)
            volumes[app.name] = result.network_bytes
            results[app.name] = app.assemble(result.output)
        assert (
            volumes["gemv"]
            < volumes["gemv-checkerboard"]
            < volumes["gemv-columns"]
        )
        # Combiner-less runs still agree numerically.
        np.testing.assert_allclose(
            results["gemv-columns"], results["gemv"], rtol=1e-3, atol=1e-4
        )
