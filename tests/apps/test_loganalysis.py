"""Tests for the log-analysis application."""

import pytest

from repro.apps.loganalysis import LogAnalysisApp, parse_line, synthesize_log
from repro.runtime.api import Block
from repro.runtime.shuffle import group_by_key


class TestParsing:
    def test_parses_well_formed_line(self):
        line = '10.0.1.2 - - [07/Jul/2013:10:00:00] "GET /index.html" 200 5120'
        assert parse_line(line) == ("10.0.1.2", "/index.html", 200, 5120)

    def test_malformed_returns_none(self):
        assert parse_line("garbage") is None
        assert parse_line('a "GET /x" not_a_number 12') is None

    def test_synthesize_deterministic(self):
        assert synthesize_log(10, seed=3) == synthesize_log(10, seed=3)


class TestApp:
    def test_blockwise_matches_reference(self):
        app = LogAnalysisApp.synthetic(500, seed=1)
        pairs = []
        for lo in range(0, 500, 37):
            pairs.extend(app.cpu_map(Block(lo, min(lo + 37, 500))))
        reduced = {
            k: app.cpu_reduce(k, vs) for k, vs in group_by_key(pairs).items()
        }
        assert reduced == app.reference()

    def test_status_classes_cover_all_lines(self):
        app = LogAnalysisApp.synthetic(300, seed=2)
        ref = app.reference()
        total = sum(v for k, v in ref.items() if k[0] == "status")
        assert total == 300

    def test_malformed_lines_counted(self):
        lines = synthesize_log(5, seed=0) + ["not a log line"] * 3
        app = LogAnalysisApp(lines)
        assert app.reference()[("malformed", "")] == 3

    def test_low_intensity_cpu_dominated(self, delta):
        from repro.core.analytic import workload_split

        app = LogAnalysisApp.synthetic(100)
        assert workload_split(delta, app.intensity(), staged=True).p > 0.95

    def test_runs_on_prs(self, delta4):
        from repro.runtime.job import JobConfig
        from repro.runtime.prs import PRSRuntime

        app = LogAnalysisApp.synthetic(800, seed=4)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert result.output == app.reference()

    def test_combiner_shrinks_network_traffic(self, delta4):
        """The combiner exists to cut shuffle volume; verify it does."""
        from repro.runtime.job import JobConfig
        from repro.runtime.prs import PRSRuntime

        class NoCombiner(LogAnalysisApp):
            def has_combiner(self):
                return False

        with_comb = PRSRuntime(delta4, JobConfig()).run(
            LogAnalysisApp.synthetic(2000, seed=5)
        )
        without = PRSRuntime(delta4, JobConfig()).run(
            NoCombiner(synthesize_log(2000, seed=5))
        )
        assert with_comb.output == without.output
        assert with_comb.network_bytes < without.network_bytes

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LogAnalysisApp([])
