"""End-to-end fault tolerance: numerical identity, bounds, determinism.

The load-bearing property (docs/FAULTS.md): block boundaries are computed
from the *nominal* device set and every block's emissions are flushed in
block order, so a job that loses a GPU daemon mid-iteration re-executes
the dead device's blocks elsewhere and still reduces **bitwise** the same
pair stream as the fault-free run — same centroids, same parameters, down
to the last ulp.
"""

import numpy as np
import pytest

from repro.data.synth import gaussian_mixture
from repro.hardware import delta_cluster
from repro.runtime.job import JobConfig
from repro.runtime.prs import PRSRuntime
from repro.simulate.faults import degraded_makespan_bound

KILL_T = 0.03  # lands mid-iteration for every app below (setup ends ~0.02)


def _points():
    pts, _, _ = gaussian_mixture(2000, 6, 3, seed=5)
    return pts


def _run(app, faults=None, n_nodes=2, **kwargs):
    config = JobConfig(faults=faults, **kwargs)
    return PRSRuntime(delta_cluster(n_nodes=n_nodes), config).run(app)


def _canonical_output(result):
    return sorted(result.output.items(), key=lambda kv: repr(kv[0]))


class TestGpuKillNumericalIdentity:
    def test_cmeans_converges_identically(self):
        from repro.apps.cmeans import CMeansApp

        pts = _points()
        clean_app = CMeansApp(pts, 3, seed=6, max_iterations=4, epsilon=1e-12)
        clean = _run(clean_app)
        faulted_app = CMeansApp(pts, 3, seed=6, max_iterations=4, epsilon=1e-12)
        faulted = _run(faulted_app, faults=f"gpu_kill@0:t={KILL_T}")

        assert faulted.recovery is not None
        assert faulted.recovery.blocks_retried > 0
        assert faulted.iterations == clean.iterations
        np.testing.assert_array_equal(clean_app.centers, faulted_app.centers)
        assert repr(_canonical_output(clean)) == repr(_canonical_output(faulted))

    def test_gmm_converges_identically(self):
        from repro.apps.gmm import GMMApp

        pts = _points()
        clean_app = GMMApp(pts, 3, seed=6, max_iterations=3)
        clean = _run(clean_app)
        faulted_app = GMMApp(pts, 3, seed=6, max_iterations=3)
        faulted = _run(faulted_app, faults=f"gpu_kill@0:t={KILL_T}")

        assert faulted.recovery.blocks_retried > 0
        assert faulted.iterations == clean.iterations
        np.testing.assert_array_equal(clean_app.weights, faulted_app.weights)
        np.testing.assert_array_equal(clean_app.means, faulted_app.means)
        np.testing.assert_array_equal(
            clean_app.covariances, faulted_app.covariances
        )


class TestDegradedMakespan:
    def test_gpu_kill_within_analytic_bound(self):
        from repro.apps.cmeans import CMeansApp

        pts = _points()
        clean = _run(CMeansApp(pts, 3, seed=6, max_iterations=4, epsilon=1e-12))
        faulted = _run(
            CMeansApp(pts, 3, seed=6, max_iterations=4, epsilon=1e-12),
            faults=f"gpu_kill@0:t={KILL_T}",
        )
        # The dead GPU held gpu_fraction of one node out of two.
        split = clean.splits[0]
        lost = split.gpu_fraction / 2
        bound = degraded_makespan_bound(clean.makespan, KILL_T, lost)
        assert clean.makespan < faulted.makespan <= bound


class TestCombinedPlanBound:
    """``degraded_makespan_bound`` composes: a kill's capacity-loss
    inflation plus window degradations folded into ``overhead_s``."""

    NET_F, NET_T0, NET_T1 = 3.0, 0.02, 0.05

    def _apps(self):
        from repro.apps.cmeans import CMeansApp

        pts = _points()
        return (
            CMeansApp(pts, 3, seed=6, max_iterations=4, epsilon=1e-12),
            CMeansApp(pts, 3, seed=6, max_iterations=4, epsilon=1e-12),
        )

    def test_gpu_kill_plus_net_slow_within_composed_bound(self):
        clean_app, faulted_app = self._apps()
        clean = _run(clean_app)
        faulted = _run(
            faulted_app,
            faults=[
                f"gpu_kill@0:t={KILL_T}",
                f"net_slow@*:factor={self.NET_F},t0={self.NET_T0},"
                f"t1={self.NET_T1}",
            ],
        )
        split = clean.splits[0]
        lost = split.gpu_fraction / 2
        # A degraded window [t0, t1] can stall the critical path by at
        # most the work it would have carried: (t1-t0) * (factor-1).
        net_overhead = (self.NET_T1 - self.NET_T0) * (self.NET_F - 1.0)
        bound = degraded_makespan_bound(
            clean.makespan, KILL_T, lost, overhead_s=net_overhead
        )
        assert clean.makespan < faulted.makespan <= bound
        # ... and numerical identity survives the combined plan.
        np.testing.assert_array_equal(clean_app.centers, faulted_app.centers)
        assert repr(_canonical_output(clean)) == repr(
            _canonical_output(faulted)
        )

    def test_gpu_kill_plus_straggler_within_composed_bound(self):
        strag_f, strag_t0, strag_t1 = 2.0, 0.02, 0.06
        clean_app, faulted_app = self._apps()
        clean = _run(clean_app)
        faulted = _run(
            faulted_app,
            faults=[
                f"gpu_kill@0:t={KILL_T}",
                f"straggler@1.cpu:factor={strag_f},t0={strag_t0},"
                f"t1={strag_t1}",
            ],
        )
        split = clean.splits[0]
        lost = split.gpu_fraction / 2
        strag_overhead = (strag_t1 - strag_t0) * (strag_f - 1.0)
        bound = degraded_makespan_bound(
            clean.makespan, KILL_T, lost, overhead_s=strag_overhead
        )
        assert clean.makespan < faulted.makespan <= bound
        np.testing.assert_array_equal(clean_app.centers, faulted_app.centers)


class TestFaultedDeterminism:
    SPECS = [
        "gpu_kill@0:t=0.025~0.04",  # ranged: exercises seeded sampling
        "straggler@1.cpu:factor=1.5~3,t0=0.02,t1=0.05",
    ]

    def _run_once(self):
        from repro.apps.cmeans import CMeansApp

        app = CMeansApp(
            _points(), 3, seed=6, max_iterations=3, epsilon=1e-12
        )
        result = _run(app, faults=self.SPECS, fault_seed=7)
        return result, app

    def test_same_plan_seed_is_bit_identical(self):
        r1, a1 = self._run_once()
        r2, a2 = self._run_once()
        assert r1.makespan == r2.makespan  # exact, not approx
        assert r1.recovery == r2.recovery
        np.testing.assert_array_equal(a1.centers, a2.centers)
        assert len(r1.trace) == len(r2.trace)
        for rec1, rec2 in zip(r1.trace.records, r2.trace.records):
            assert rec1 == rec2

    def test_different_fault_seed_changes_schedule(self):
        from repro.apps.cmeans import CMeansApp

        makespans = set()
        for seed in (7, 8, 9):
            app = CMeansApp(
                _points(), 3, seed=6, max_iterations=3, epsilon=1e-12
            )
            makespans.add(
                _run(app, faults=self.SPECS, fault_seed=seed).makespan
            )
        assert len(makespans) > 1


class TestZeroFaultPath:
    @pytest.mark.parametrize("scheduling", ["static", "dynamic"])
    def test_no_plan_matches_empty_plan_runs(self, scheduling):
        """An empty fault plan must not perturb the schedule at all."""
        from repro.apps.cmeans import CMeansApp

        pts = _points()
        a1 = CMeansApp(pts, 3, seed=6, max_iterations=3, epsilon=1e-12)
        r1 = _run(a1, scheduling=scheduling)
        a2 = CMeansApp(pts, 3, seed=6, max_iterations=3, epsilon=1e-12)
        r2 = _run(a2, faults=[], scheduling=scheduling)
        assert r1.recovery is None and r2.recovery is None
        assert r1.makespan == r2.makespan
        np.testing.assert_array_equal(a1.centers, a2.centers)
        for rec1, rec2 in zip(r1.trace.records, r2.trace.records):
            assert rec1 == rec2
