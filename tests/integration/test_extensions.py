"""Integration tests for extensions beyond the paper's base evaluation:
K-means performance ratios, multi-GPU nodes, perturbed-device dynamic
scheduling, and the iteration log plumbing."""

import numpy as np
import pytest

from repro.apps.cmeans import CMeansApp
from repro.apps.kmeans import KMeansApp
from repro.baselines import MpiCpuBaseline, MpiGpuBaseline, WorkloadSpec
from repro.core.intensity import cmeans_intensity, kmeans_intensity
from repro.data.synth import gaussian_mixture
from repro.hardware import Cluster, delta_cluster, delta_node
from repro.runtime.job import JobConfig, Overheads, Scheduling
from repro.runtime.prs import PRSRuntime

QUIET = Overheads(0.0, 0.0, 0.0, 0.0)


class TestKMeansPerformanceRatios:
    """'We also have seen similar performance ratios for Kmeans' (§IV.A.1)."""

    def test_cpu_gpu_ratio_similar_to_cmeans(self, delta4):
        def ratio(intensity):
            w = WorkloadSpec(
                total_bytes=4e8, intensity=intensity, iterations=10,
                state_bytes=8000.0, resident=True,
            )
            return (
                MpiCpuBaseline(delta4).run_seconds(w)
                / MpiGpuBaseline(delta4).run_seconds(w)
            )

        r_cmeans = ratio(cmeans_intensity(10))
        r_kmeans = ratio(kmeans_intensity(10))
        assert r_kmeans == pytest.approx(r_cmeans, rel=0.3)

    def test_prs_kmeans_coprocessing_gain_similar(self, delta4):
        pts, _, _ = gaussian_mixture(30_000, 32, 10, seed=3)

        def gain(app_cls):
            t = {}
            for use_cpu in (True, False):
                app = app_cls(pts, 10, seed=4, max_iterations=3, epsilon=1e-12)
                config = JobConfig(use_cpu=use_cpu, overheads=QUIET)
                t[use_cpu] = PRSRuntime(delta4, config).run(app).makespan
            return t[False] / t[True]

        g_cmeans = gain(CMeansApp)
        g_kmeans = gain(KMeansApp)
        assert g_kmeans == pytest.approx(g_cmeans, abs=0.15)


class TestMultiGpuNodes:
    """Delta nodes carry two C2070s (Table 4); PRS can drive both."""

    def make_cluster(self, n_gpus):
        nodes = tuple(
            delta_node(name=f"d{i}", n_gpus=n_gpus) for i in range(2)
        )
        return Cluster(name="delta2", nodes=nodes)

    def test_two_gpus_beat_one_on_high_intensity(self):
        pts, _, _ = gaussian_mixture(60_000, 32, 100, seed=5)

        def run(gpus):
            app = CMeansApp(pts, 100, seed=6, max_iterations=2, epsilon=1e-12)
            config = JobConfig(gpus_per_node=gpus, overheads=QUIET)
            return PRSRuntime(self.make_cluster(2), config).run(app).makespan

        t1, t2 = run(1), run(2)
        assert t2 < t1 * 0.7  # second GPU absorbs most of the 89% GPU share

    def test_output_correct_with_two_gpus(self):
        from tests.helpers import ModSumApp

        app = ModSumApp(n=2000, n_keys=4)
        config = JobConfig(gpus_per_node=2, overheads=QUIET)
        result = PRSRuntime(self.make_cluster(2), config).run(app)
        assert result.output == app.expected_output()

    def test_both_gpus_record_work(self):
        pts, _, _ = gaussian_mixture(20_000, 16, 50, seed=7)
        app = CMeansApp(pts, 50, seed=8, max_iterations=2, epsilon=1e-12)
        config = JobConfig(gpus_per_node=2, overheads=QUIET)
        result = PRSRuntime(self.make_cluster(2), config).run(app)
        assert result.trace.total_flops("d0.gpu0") > 0
        assert result.trace.total_flops("d0.gpu1") > 0


class TestDynamicAdaptsToPerturbedDevices:
    """Dynamic scheduling self-corrects when the hardware diverges from
    its spec — static trusts the (now wrong) model."""

    def perturbed_cluster(self, gpu_factor):
        base = delta_node(n_gpus=1)
        from repro.hardware import FatNode

        slow = FatNode(
            name="slow",
            cpu=base.cpu,
            gpus=(base.gpu.scaled(gpu_factor),),
        )
        return Cluster(name="slow", nodes=(slow,))

    def test_dynamic_beats_static_on_misdescribed_gpu(self):
        """The *spec* says full speed; the simulated silicon runs at 20 %.
        We model that by forcing static to the healthy-GPU p on a slow-GPU
        cluster, while dynamic polls its way around the slowdown."""
        pts, _, _ = gaussian_mixture(100_000, 32, 100, seed=9)
        healthy_p = 0.112  # Equation (8) for the healthy GPU
        cluster = self.perturbed_cluster(0.2)

        def run(scheduling, force=None):
            app = CMeansApp(pts, 100, seed=10, max_iterations=2, epsilon=1e-12)
            config = JobConfig(
                scheduling=scheduling, force_cpu_fraction=force,
                overheads=QUIET, dynamic_blocks=256,
            )
            return PRSRuntime(cluster, config).run(app).makespan

        t_static_stale = run(Scheduling.STATIC, force=healthy_p)
        t_dynamic = run(Scheduling.DYNAMIC)
        assert t_dynamic < t_static_stale


class TestIterationLogPlumbing:
    def test_non_iterative_jobs_log_one_iteration(self, delta4):
        from tests.helpers import ModSumApp

        result = PRSRuntime(delta4, JobConfig()).run(ModSumApp(n=500))
        assert result.iteration_log is not None
        assert len(result.iteration_log) == 1

    def test_log_covers_all_iterations(self, delta4):
        from tests.helpers import CountdownApp

        result = PRSRuntime(delta4, JobConfig()).run(CountdownApp(rounds=5))
        assert len(result.iteration_log) == 5
        assert result.iteration_log.total_time <= result.makespan
