"""Cross-validation: the DES simulation against the closed-form model.

The whole reproduction hinges on the simulator and the analytic model
agreeing where they describe the same thing.  With overheads zeroed and a
single map wave, the simulated makespan of a single-device run must match
the roofline prediction; a co-processed run must match ``T_gc`` of
Equations (1)-(3); and the weak-scaling trace must conserve flops.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analytic import predicted_runtime
from repro.core.intensity import ConstantIntensity
from repro.hardware import Cluster, delta_cluster, delta_node
from repro.runtime.api import Block, MapReduceApp
from repro.runtime.job import JobConfig, Overheads, Scheduling
from repro.runtime.prs import PRSRuntime

QUIET = Overheads(0.0, 0.0, 0.0, 0.0)


class SyntheticApp(MapReduceApp):
    """Pure cost-model app: negligible functional work, exact metadata.

    Map emits a single tiny pair, so the shuffle/reduce stages cost ~0 and
    the makespan isolates the map-stage device time the analytic model
    predicts.
    """

    name = "synthetic"

    def __init__(self, n_items: int, item_bytes: float, intensity: float):
        self._n = n_items
        self._bytes = item_bytes
        self._intensity = ConstantIntensity(intensity, label="syn")

    def n_items(self) -> int:
        return self._n

    def item_bytes(self) -> float:
        return self._bytes

    def intensity(self):
        return self._intensity

    def map_output_bytes(self, block: Block) -> float:
        return 8.0

    def reduce_flops(self, key, values) -> float:
        return 1.0

    def cpu_map(self, block: Block):
        return [("w", block.n_items)]

    def cpu_reduce(self, key, values):
        return sum(values)


def one_node_cluster():
    return Cluster(name="one", nodes=(delta_node("one", n_gpus=1),))


def run_synthetic(ai, *, use_cpu=True, use_gpu=True, n=120_000, force_p=None):
    app = SyntheticApp(n, item_bytes=64.0, intensity=ai)
    config = JobConfig(
        use_cpu=use_cpu,
        use_gpu=use_gpu,
        overheads=QUIET,
        partitions_per_node=1,  # one map wave: comparable to the formula
        force_cpu_fraction=force_p,
        overlap_threshold=1.0,  # serialize GPU blocks: closed-form below
    )
    result = PRSRuntime(one_node_cluster(), config).run(app)
    return app, result


def gpu_serial_seconds(node, ai, nbytes):
    """Closed form of the simulator's GPU path: h2d copy then kernel.

    The roofline's first Equation-(7) branch assumes steady-state overlap
    of transfer and compute (``max``); a single serialized block pays the
    ``sum``.  The co-processing experiments of the paper stream/pipeline,
    so Equation (8) uses the overlap form; this helper is the exact
    serialized counterpart the simulator implements with streams off.
    """
    gpu = node.gpu
    transfer = nbytes / (gpu.pcie_bandwidth * 1e9)
    kernel = ai * nbytes / (
        gpu.attainable_gflops(ai, staged=False) * 1e9
    )
    return transfer + kernel


def cpu_seconds(node, ai, nbytes):
    return ai * nbytes / (node.cpu.attainable_gflops(ai) * 1e9)


class TestSingleDeviceAgreement:
    @settings(max_examples=15, deadline=None)
    @given(ai=st.floats(1.0, 2000.0))
    def test_gpu_only_matches_serial_form_exactly(self, ai):
        app, result = run_synthetic(ai, use_cpu=False)
        node = one_node_cluster().nodes[0]
        expected = gpu_serial_seconds(node, ai, app.total_bytes())
        assert result.makespan == pytest.approx(expected, rel=0.02)

    @settings(max_examples=15, deadline=None)
    @given(ai=st.floats(1.0, 2000.0))
    def test_gpu_only_sandwiched_by_roofline(self, ai):
        """Roofline (full overlap) <= simulated (serialized) <= 2x roofline:
        the max-vs-sum bracket of the streaming-balance assumption."""
        app, result = run_synthetic(ai, use_cpu=False)
        node = one_node_cluster().nodes[0]
        roofline = predicted_runtime(
            node, ai, app.total_bytes(), p=0.0, staged=True
        )
        assert roofline * 0.98 <= result.makespan <= 2.0 * roofline * 1.02

    @settings(max_examples=15, deadline=None)
    @given(ai=st.floats(1.0, 2000.0))
    def test_cpu_only_matches_roofline(self, ai):
        app, result = run_synthetic(ai, use_gpu=False)
        node = one_node_cluster().nodes[0]
        expected = predicted_runtime(
            node, ai, app.total_bytes(), p=1.0, staged=True
        )
        assert result.makespan == pytest.approx(expected, rel=0.05)


class TestCoprocessedAgreement:
    @settings(max_examples=15, deadline=None)
    @given(ai=st.floats(1.0, 2000.0))
    def test_both_devices_match_serial_t_gc(self, ai):
        """Simulated co-processing time = max of the two device paths'
        closed forms (Equation 1 with the serialized GPU branch)."""
        app, result = run_synthetic(ai)
        node = one_node_cluster().nodes[0]
        p = result.splits[0].p
        nbytes = app.total_bytes()
        expected = max(
            cpu_seconds(node, ai, p * nbytes),
            gpu_serial_seconds(node, ai, (1.0 - p) * nbytes),
        )
        # Item-granularity rounding + CPU block tail effects: 10%.
        assert result.makespan == pytest.approx(expected, rel=0.10)

    @settings(max_examples=10, deadline=None)
    @given(ai=st.floats(5.0, 500.0), p=st.floats(0.05, 0.95))
    def test_forced_fraction_matches_formula(self, ai, p):
        app, result = run_synthetic(ai, force_p=p)
        node = one_node_cluster().nodes[0]
        nbytes = app.total_bytes()
        expected = max(
            cpu_seconds(node, ai, p * nbytes),
            gpu_serial_seconds(node, ai, (1.0 - p) * nbytes),
        )
        assert result.makespan == pytest.approx(expected, rel=0.10)

    @settings(max_examples=10, deadline=None)
    @given(ai=st.floats(1.0, 2000.0))
    def test_analytic_p_nearly_ties_any_forced_p(self, ai):
        """Optimality end-to-end: no materially different fraction beats
        the Equation (8) split by more than the serialization slack (the
        model optimizes the overlapped form; the serialized GPU branch can
        shift the simulated optimum slightly toward the CPU)."""
        _, best = run_synthetic(ai)
        for p in (0.05, 0.3, 0.7, 0.95):
            _, other = run_synthetic(ai, force_p=p)
            assert best.makespan <= other.makespan * 1.6


class TestFlopConservation:
    @settings(max_examples=10, deadline=None)
    @given(
        ai=st.floats(1.0, 500.0),
        scheduling=st.sampled_from([Scheduling.STATIC, Scheduling.DYNAMIC]),
    )
    def test_trace_flops_equal_app_flops(self, ai, scheduling):
        app = SyntheticApp(50_000, item_bytes=64.0, intensity=ai)
        config = JobConfig(scheduling=scheduling, overheads=QUIET)
        result = PRSRuntime(delta_cluster(2), config).run(app)
        map_flops = sum(
            r.flops for r in result.trace.records if r.kind == "compute"
        )
        expected = ai * app.total_bytes()
        assert map_flops == pytest.approx(expected, rel=1e-6)
