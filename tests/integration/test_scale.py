"""Scale tests: the simulation substrate at cluster sizes beyond the paper.

The paper stops at 8 nodes; these tests push the simulated machine to 32
nodes and larger event counts to establish that the reproduction's
conclusions are not artifacts of small configurations — and that the DES
substrate itself keeps up.
"""

import pytest

from repro.apps.cmeans import CMeansApp
from repro.data.synth import gaussian_mixture
from repro.hardware import delta_cluster
from repro.runtime.job import JobConfig, Overheads, Scheduling
from repro.runtime.prs import PRSRuntime

QUIET = Overheads(0.0, 0.0, 0.0, 0.0)


class TestLargeCluster:
    def test_weak_scaling_holds_to_32_nodes(self):
        per_node = 50_000  # enough per-node work that compute dominates
        rates = {}
        for n_nodes in (8, 32):
            pts, _, _ = gaussian_mixture(per_node * n_nodes, 16, 4, seed=61)
            app = CMeansApp(pts, 10, seed=62, max_iterations=2, epsilon=1e-12)
            result = PRSRuntime(
                delta_cluster(n_nodes=n_nodes), JobConfig(overheads=QUIET)
            ).run(app)
            rates[n_nodes] = result.gflops_per_node(n_nodes)
        # The reduction tree grows log(P): mild droop, no collapse.
        assert rates[32] > 0.7 * rates[8]

    def test_conservation_at_32_nodes(self):
        from tests.helpers import ModSumApp

        app = ModSumApp(n=50_000, n_keys=16)
        result = PRSRuntime(
            delta_cluster(n_nodes=32), JobConfig()
        ).run(app)
        assert result.output == app.expected_output()

    def test_every_node_contributes(self):
        pts, _, _ = gaussian_mixture(64_000, 8, 4, seed=63)
        app = CMeansApp(pts, 4, seed=64, max_iterations=2, epsilon=1e-12)
        result = PRSRuntime(
            delta_cluster(n_nodes=16), JobConfig(overheads=QUIET)
        ).run(app)
        for i in range(16):
            assert result.trace.total_flops(f"delta{i:02d}.gpu0") > 0, i

    def test_dynamic_scheduling_scales(self):
        from tests.helpers import ModSumApp

        app = ModSumApp(n=30_000, n_keys=8, intensity=100.0)
        config = JobConfig(
            scheduling=Scheduling.DYNAMIC, dynamic_blocks=32,
        )
        result = PRSRuntime(delta_cluster(n_nodes=16), config).run(app)
        assert result.output == app.expected_output()


class TestEventVolume:
    def test_hundred_thousand_events_complete(self):
        """A dense contention pattern: ~1e5 events through the kernel."""
        from repro.simulate.engine import Engine
        from repro.simulate.resources import CorePool

        engine = Engine()
        pool = CorePool(engine, 16)

        def worker():
            for _ in range(100):
                yield from pool.using(0.5)

        procs = [engine.process(worker()) for _ in range(256)]
        engine.run(engine.all_of(procs))
        # 256 workers x 100 jobs on 16 cores: exact makespan.
        assert engine.now == pytest.approx(256 * 100 / 16 * 0.5)

    def test_many_iterations_iterative_job(self):
        from tests.helpers import CountdownApp

        app = CountdownApp(n=1000, rounds=40)
        app.max_iterations = 50
        result = PRSRuntime(delta_cluster(n_nodes=4), JobConfig()).run(app)
        assert result.iterations == 40
        assert len(result.iteration_log) == 40
