"""End-to-end: the paper's applications on the PRS simulated cluster.

These are the integration points the evaluation section depends on —
correctness of distributed results against serial references, the Table 5
split behaviour, the §IV co-processing speedups, and weak-scaling shape.
"""

import numpy as np
import pytest

from repro.apps.cmeans import CMeansApp, cmeans_reference
from repro.apps.gemv import GemvApp
from repro.apps.gmm import GMMApp
from repro.apps.wordcount import WordCountApp
from repro.data.synth import gaussian_mixture, random_matrix, random_vector, text_corpus
from repro.hardware import delta_cluster
from repro.runtime.job import JobConfig, Overheads, Scheduling
from repro.runtime.prs import PRSRuntime

QUIET = Overheads(0.0, 0.0, 0.0, 0.0)


class TestCMeansOnPRS:
    @pytest.fixture
    def blobs(self):
        return gaussian_mixture(3000, 8, 4, seed=21, spread=15.0)

    def test_distributed_matches_serial(self, delta4, blobs):
        pts, _, _ = blobs
        app = CMeansApp(pts, 4, seed=5, epsilon=1e-12, max_iterations=6)
        PRSRuntime(delta4, JobConfig()).run(app)
        ref = cmeans_reference(pts, 4, iterations=6, seed=5)
        np.testing.assert_allclose(
            np.sort(app.centers, axis=0), np.sort(ref, axis=0), rtol=1e-5
        )

    def test_static_and_dynamic_agree_numerically(self, delta4, blobs):
        pts, _, _ = blobs
        a1 = CMeansApp(pts, 4, seed=5, max_iterations=4, epsilon=1e-12)
        a2 = CMeansApp(pts, 4, seed=5, max_iterations=4, epsilon=1e-12)
        PRSRuntime(delta4, JobConfig(scheduling=Scheduling.STATIC)).run(a1)
        PRSRuntime(delta4, JobConfig(scheduling=Scheduling.DYNAMIC)).run(a2)
        np.testing.assert_allclose(a1.centers, a2.centers, rtol=1e-7)

    def test_split_is_table5_value(self, delta4, blobs):
        pts, _, _ = blobs
        app = CMeansApp(pts, 100, seed=5, max_iterations=1)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        # Resident iterative app with M=100: p = 11.2 % (Table 5).
        assert result.splits[0].p == pytest.approx(0.112, abs=0.002)

    def test_gpu_cpu_beats_gpu_only_modestly(self, delta4, blobs):
        """§IV: 'the GPU+CPU version is 1.3 times faster than GPU only'
        for C-means; our analytic ceiling is ~1.13x."""
        pts, _, _ = blobs
        mk = lambda: CMeansApp(pts, 100, seed=5, max_iterations=3, epsilon=1e-12)
        t_both = PRSRuntime(
            delta4, JobConfig(overheads=QUIET)
        ).run(mk()).makespan
        t_gpu = PRSRuntime(
            delta4, JobConfig(use_cpu=False, overheads=QUIET)
        ).run(mk()).makespan
        assert 1.02 < t_gpu / t_both < 1.4


class TestGemvOnPRS:
    def test_result_correct(self, delta4):
        a = random_matrix(2000, 64, seed=1)
        x = random_vector(64, seed=2)
        app = GemvApp(a, x)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        y = app.assemble(result.output)
        # float32 kernels vs float64 reference: absolute tolerance needed
        # near zero-crossing entries.
        np.testing.assert_allclose(y, app.reference(), rtol=1e-3, atol=1e-5)

    def test_split_is_table5_value(self, delta4):
        app = GemvApp(random_matrix(512, 64, seed=3), random_vector(64, seed=4))
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert result.splits[0].p == pytest.approx(0.973, abs=0.005)

    def test_huge_co_processing_gain(self, delta4):
        """§IV headline: 'using all CPU cores increase the GPU performance
        by 1011.8%' for GEMV — i.e. ~11x, bounded by ~36x analytic."""
        mk = lambda: GemvApp(
            random_matrix(60_000, 64, seed=5), random_vector(64, seed=6)
        )
        t_both = PRSRuntime(
            delta4, JobConfig(overheads=QUIET)
        ).run(mk()).makespan
        t_gpu = PRSRuntime(
            delta4, JobConfig(use_cpu=False, overheads=QUIET)
        ).run(mk()).makespan
        assert t_gpu / t_both > 5.0


class TestGmmOnPRS:
    def test_distributed_em_increases_likelihood(self, delta4):
        pts, _, _ = gaussian_mixture(2000, 6, 3, seed=31, spread=8.0)
        app = GMMApp(pts, 3, seed=9, max_iterations=5)
        PRSRuntime(delta4, JobConfig()).run(app)
        hist = app.loglik_history
        assert len(hist) >= 2
        assert all(b >= a - 1e-6 * abs(a) for a, b in zip(hist, hist[1:]))

    def test_split_matches_table5(self, delta4):
        pts, _, _ = gaussian_mixture(500, 60, 3, seed=32)
        app = GMMApp(pts, 10, seed=10, max_iterations=1)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert result.splits[0].p == pytest.approx(0.112, abs=0.002)


class TestWordCountOnPRS:
    def test_counts_exact(self, delta4):
        docs = text_corpus(200, words_per_doc=60, seed=41)
        app = WordCountApp(docs)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert result.output == app.reference()

    def test_cpu_dominates_split(self, delta4):
        docs = text_corpus(50, seed=42)
        app = WordCountApp(docs)
        result = PRSRuntime(delta4, JobConfig()).run(app)
        assert result.splits[0].p > 0.95


class TestWeakScalingShape:
    """Figure 6 shape: near-constant GFLOP/s per node as nodes grow."""

    def test_cmeans_weak_scaling_flat(self):
        per_node = 20_000
        gflops = []
        for n_nodes in (1, 2, 4):
            pts, _, _ = gaussian_mixture(per_node * n_nodes, 16, 4, seed=51)
            app = CMeansApp(pts, 10, seed=5, max_iterations=3, epsilon=1e-12)
            cluster = delta_cluster(n_nodes=n_nodes)
            result = PRSRuntime(
                cluster, JobConfig(overheads=QUIET)
            ).run(app)
            gflops.append(result.gflops_per_node(n_nodes))
        # Per-node throughput within 20% across cluster sizes.
        assert max(gflops) / min(gflops) < 1.25

    def test_reduction_overhead_grows_with_nodes(self):
        """§IV.B: 'peak performance per node decrease ... due to the
        increasing overhead in global reduction stage'."""
        per_node = 2000
        times = {}
        for n_nodes in (1, 8):
            pts, _, _ = gaussian_mixture(per_node * n_nodes, 16, 4, seed=52)
            app = CMeansApp(pts, 10, seed=5, max_iterations=3, epsilon=1e-12)
            result = PRSRuntime(
                delta_cluster(n_nodes=n_nodes), JobConfig(overheads=QUIET)
            ).run(app)
            times[n_nodes] = result.makespan
        # Same per-node work, larger cluster is (slightly) slower.
        assert times[8] >= times[1]
