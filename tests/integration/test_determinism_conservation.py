"""System-level properties: determinism and exactly-once processing.

Two invariants every distributed runtime must honour:

* **Determinism** — the DES kernel breaks same-instant ties FIFO and the
  apps are seeded, so two identical runs must agree bit-for-bit in both
  timing and output.
* **Conservation** — every input item is mapped exactly once, no matter
  how the two-level scheduler slices the input across nodes, devices and
  blocks (static or dynamic).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intensity import ConstantIntensity
from repro.hardware import delta_cluster
from repro.runtime.api import Block, MapReduceApp
from repro.runtime.job import JobConfig, Scheduling
from repro.runtime.prs import PRSRuntime


class ItemAuditApp(MapReduceApp):
    """Emits each item id once; the reduce output is an exact audit."""

    name = "audit"

    def __init__(self, n: int):
        self._n = n
        self._intensity = ConstantIntensity(25.0, label="audit")

    def n_items(self) -> int:
        return self._n

    def item_bytes(self) -> float:
        return 16.0

    def intensity(self):
        return self._intensity

    def cpu_map(self, block: Block):
        return [(i % 7, i) for i in range(block.start, block.stop)]

    def cpu_reduce(self, key, values):
        return sorted(values)


class TestConservation:
    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(1, 800),
        nodes=st.integers(1, 5),
        scheduling=st.sampled_from([Scheduling.STATIC, Scheduling.DYNAMIC]),
        partitions=st.integers(1, 4),
        dynamic_blocks=st.integers(1, 50),
    )
    def test_every_item_mapped_exactly_once(
        self, n, nodes, scheduling, partitions, dynamic_blocks
    ):
        app = ItemAuditApp(n)
        config = JobConfig(
            scheduling=scheduling,
            partitions_per_node=partitions,
            dynamic_blocks=dynamic_blocks,
        )
        result = PRSRuntime(delta_cluster(n_nodes=nodes), config).run(app)
        seen = sorted(i for values in result.output.values() for i in values)
        assert seen == list(range(n))

    @pytest.mark.parametrize("use_cpu,use_gpu", [(True, False), (False, True)])
    def test_single_device_classes_conserve(self, use_cpu, use_gpu):
        app = ItemAuditApp(500)
        config = JobConfig(use_cpu=use_cpu, use_gpu=use_gpu)
        result = PRSRuntime(delta_cluster(n_nodes=3), config).run(app)
        seen = sorted(i for values in result.output.values() for i in values)
        assert seen == list(range(500))


class TestDeterminism:
    def run_once(self, scheduling):
        from repro.apps.cmeans import CMeansApp
        from repro.data.synth import gaussian_mixture

        pts, _, _ = gaussian_mixture(2000, 6, 3, seed=5)
        app = CMeansApp(pts, 3, seed=6, max_iterations=3, epsilon=1e-12)
        result = PRSRuntime(
            delta_cluster(n_nodes=4), JobConfig(scheduling=scheduling)
        ).run(app)
        return result, app

    @pytest.mark.parametrize(
        "scheduling", [Scheduling.STATIC, Scheduling.DYNAMIC]
    )
    def test_bitwise_repeatability(self, scheduling):
        r1, a1 = self.run_once(scheduling)
        r2, a2 = self.run_once(scheduling)
        assert r1.makespan == r2.makespan  # exact, not approx
        assert len(r1.trace) == len(r2.trace)
        np.testing.assert_array_equal(a1.centers, a2.centers)
        assert r1.network_bytes == r2.network_bytes

    def test_trace_records_identical(self):
        r1, _ = self.run_once(Scheduling.STATIC)
        r2, _ = self.run_once(Scheduling.STATIC)
        for rec1, rec2 in zip(r1.trace.records, r2.trace.records):
            assert rec1 == rec2


class TestFaultedDeterminism:
    """Fault injection preserves the determinism contract: the same
    FaultPlan + seed yields bit-identical timings and recovery counters
    (the deeper numerical-identity checks live in
    tests/integration/test_fault_tolerance.py)."""

    def run_once(self):
        from repro.apps.cmeans import CMeansApp
        from repro.data.synth import gaussian_mixture

        pts, _, _ = gaussian_mixture(2000, 6, 3, seed=5)
        app = CMeansApp(pts, 3, seed=6, max_iterations=3, epsilon=1e-12)
        config = JobConfig(
            faults=["gpu_kill@0:t=0.025~0.04", "rank_kill@3:t=0.03~0.05"],
            fault_seed=11,
        )
        return PRSRuntime(delta_cluster(n_nodes=4), config).run(app), app

    def test_same_fault_seed_bit_identical(self):
        r1, a1 = self.run_once()
        r2, a2 = self.run_once()
        assert r1.makespan == r2.makespan  # exact, not approx
        assert r1.recovery == r2.recovery
        assert r1.recovery is not None and not r1.recovery.clean
        assert r1.network_bytes == r2.network_bytes
        np.testing.assert_array_equal(a1.centers, a2.centers)
        for rec1, rec2 in zip(r1.trace.records, r2.trace.records):
            assert rec1 == rec2
