"""End-to-end DGEMM on PRS: size-dependent intensity through the scheduler.

DGEMM is the one application whose intensity profile is a *function of
block size* (Equation 10); running it through the full runtime exercises
the BlockScaled paths in the split decision, the granularity planner and
the MinBs stream gate.
"""

import numpy as np
import pytest

from repro.apps.dgemm import DgemmApp
from repro.core.analytic import Regime
from repro.data.synth import random_matrix
from repro.hardware import delta_cluster
from repro.runtime.job import JobConfig, Overheads
from repro.runtime.prs import PRSRuntime

QUIET = Overheads(0.0, 0.0, 0.0, 0.0)


@pytest.fixture
def dgemm_app():
    a = random_matrix(256, 96, seed=21)
    b = random_matrix(96, 128, seed=22)
    return DgemmApp(a, b)


class TestDgemmOnPRS:
    def test_result_matches_numpy(self, delta4, dgemm_app):
        result = PRSRuntime(delta4, JobConfig()).run(dgemm_app)
        c = dgemm_app.assemble(result.output)
        np.testing.assert_allclose(
            c, dgemm_app.reference(), rtol=1e-3, atol=1e-3
        )

    def test_split_evaluates_profile_at_input_size(self, delta4, dgemm_app):
        result = PRSRuntime(delta4, JobConfig()).run(dgemm_app)
        split = result.splits[0]
        expected_ai = dgemm_app.intensity().at(dgemm_app.total_bytes())
        # K=128 -> saturation at 64 flops/byte; this small instance sits
        # between the CPU ridge (4.06) and the staged GPU ridge (1115).
        assert 4.06 < expected_ai < 1115
        assert split.regime is Regime.BETWEEN_RIDGES

    def test_dynamic_matches_static_numerically(self, delta4, dgemm_app):
        from repro.runtime.job import Scheduling

        a = dgemm_app.a
        b = dgemm_app.b
        r1 = PRSRuntime(delta4, JobConfig()).run(DgemmApp(a, b))
        r2 = PRSRuntime(
            delta4, JobConfig(scheduling=Scheduling.DYNAMIC)
        ).run(DgemmApp(a, b))
        c1 = DgemmApp(a, b).assemble(r1.output)
        c2 = DgemmApp(a, b).assemble(r2.output)
        # float32 kernels accumulate in block-dependent order
        np.testing.assert_allclose(c1, c2, rtol=1e-3, atol=1e-4)

    def test_larger_blocks_attain_higher_effective_rate(self):
        """The O(N)-intensity property end to end: the same total work in
        fewer, larger partitions has higher arithmetic intensity, so a
        smaller PCI-E share and a higher *effective* (staging-inclusive)
        GPU rate — the §III.B.3b reason DGEMM blocks must stay large."""
        a = random_matrix(4096, 256, seed=23)
        b = random_matrix(256, 4096, seed=24)

        def effective_rate(partitions_per_node):
            app = DgemmApp(a, b)
            config = JobConfig(
                use_cpu=False,
                partitions_per_node=partitions_per_node,
                overheads=QUIET,
            )
            result = PRSRuntime(delta_cluster(n_nodes=1), config).run(app)
            return result.total_flops / result.makespan

        assert effective_rate(1) > effective_rate(16) * 1.2
