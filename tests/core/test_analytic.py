"""Tests for the analytic workload-distribution model (Equations 1-8).

The headline requirements come straight from Table 5 of the paper: with
the Delta presets the model must yield p = 97.3 % for GEMV, 11.2 % for
C-means and GMM, and the equal-time split must actually minimize the
predicted co-processing time (the paper's linear-programming argument).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analytic import (
    AnalyticModel,
    Regime,
    brute_force_split,
    multi_device_split,
    node_partition_weights,
    predicted_runtime,
    workload_split,
)
from repro.core.intensity import (
    ConstantIntensity,
    cmeans_intensity,
    gemv_intensity,
    gmm_intensity,
)
from repro.hardware import Cluster, delta_cluster
from repro.hardware.presets import bigred2_node, delta_node


class TestTable5:
    """The paper's Table 5 'p calculated by Equation (8)' column."""

    def test_gemv_split(self, delta):
        d = workload_split(delta, gemv_intensity(), staged=True)
        assert d.p == pytest.approx(0.973, abs=0.005)
        assert d.regime is Regime.BELOW_CPU_RIDGE

    def test_cmeans_split(self, delta):
        # Iterative app: event matrix cached in GPU memory => resident.
        d = workload_split(delta, cmeans_intensity(100), staged=False)
        assert d.p == pytest.approx(0.112, abs=0.002)
        assert d.regime is Regime.ABOVE_GPU_RIDGE

    def test_gmm_split(self, delta):
        d = workload_split(delta, gmm_intensity(10, 60), staged=False)
        assert d.p == pytest.approx(0.112, abs=0.002)
        assert d.regime is Regime.ABOVE_GPU_RIDGE

    def test_low_intensity_favours_cpu_high_favours_gpu(self, delta):
        """§III.B.3a: low-AI apps assign more work to CPU, high-AI to GPU."""
        low = workload_split(delta, ConstantIntensity(0.25), staged=True)
        high = workload_split(delta, ConstantIntensity(1e4), staged=True)
        assert low.p > 0.9
        assert high.p < 0.2


class TestOptimality:
    """Equation (4): the equal-time p minimizes T_gc = max(T_c, T_g)."""

    @settings(max_examples=40, deadline=None)
    @given(ai=st.floats(0.1, 5000.0), staged=st.booleans())
    def test_analytic_p_matches_brute_force(self, delta, ai, staged):
        d = workload_split(delta, ai, staged=staged)
        best = brute_force_split(delta, ai, staged=staged)
        t_analytic = predicted_runtime(delta, ai, 1e9, d.p, staged=staged)
        t_best = predicted_runtime(delta, ai, 1e9, best, staged=staged)
        # Analytic time must match the grid optimum to grid resolution.
        assert t_analytic <= t_best * (1 + 1e-2)

    @settings(max_examples=40, deadline=None)
    @given(ai=st.floats(0.1, 5000.0))
    def test_p_in_unit_interval(self, delta, ai):
        assert 0.0 < workload_split(delta, ai).p < 1.0

    @settings(max_examples=30, deadline=None)
    @given(ai=st.floats(0.1, 5000.0))
    def test_equal_time_at_optimum(self, delta, ai):
        d = workload_split(delta, ai)
        t_cpu = d.p * 1e9 * ai / (d.cpu_rate * 1e9)
        t_gpu = (1 - d.p) * 1e9 * ai / (d.gpu_rate * 1e9)
        assert t_cpu == pytest.approx(t_gpu, rel=1e-9)

    def test_monotone_p_in_intensity(self, delta):
        """More intensity -> GPU relatively stronger -> smaller p."""
        ais = np.logspace(-1, 4, 60)
        ps = [workload_split(delta, float(a), staged=True).p for a in ais]
        assert all(p2 <= p1 + 1e-12 for p1, p2 in zip(ps, ps[1:]))


class TestRegimes:
    def test_regime_boundaries(self, delta):
        a_cr = delta.cpu.ridge_point()
        a_gr = delta.gpu.ridge_point(staged=True)
        assert workload_split(delta, a_cr * 0.5).regime is Regime.BELOW_CPU_RIDGE
        mid = np.sqrt(a_cr * a_gr)
        assert workload_split(delta, float(mid)).regime is Regime.BETWEEN_RIDGES
        assert workload_split(delta, a_gr * 2).regime is Regime.ABOVE_GPU_RIDGE

    def test_above_gpu_ridge_matches_peak_ratio(self, delta):
        """Third branch of Equation (8): p = P_c / (P_g + P_c)."""
        d = workload_split(delta, 1e5, staged=True)
        expected = 130.0 / (1030.0 + 130.0)
        assert d.p == pytest.approx(expected)


class TestDifferentCpuGpuIntensities:
    """A_c != A_g case (different algorithm implementations, §III.B.3a)."""

    def test_general_form_reduces_to_eq5_when_equal(self, delta):
        d1 = workload_split(delta, 50.0)
        d2 = workload_split(delta, 50.0, gpu_intensity=50.0)
        assert d1.p == d2.p

    def test_gpu_doing_more_flops_per_byte_shifts_work_to_cpu(self, delta):
        base = workload_split(delta, 1e4, staged=True)
        wasteful_gpu = workload_split(delta, 1e4, gpu_intensity=2e4, staged=True)
        # GPU needs twice the flops per byte: its byte rate halves at peak.
        assert wasteful_gpu.p > base.p

    def test_equal_time_property_holds_generalized(self, delta):
        a_c, a_g = 30.0, 90.0
        d = workload_split(delta, a_c, gpu_intensity=a_g, staged=True)
        t_cpu = d.p * a_c / d.cpu_rate
        t_gpu = (1 - d.p) * a_g / d.gpu_rate
        assert t_cpu == pytest.approx(t_gpu, rel=1e-9)


class TestPredictedRuntime:
    def test_gpu_only_time(self, delta):
        t = predicted_runtime(delta, 2.0, 1e9, p=0.0, staged=True)
        f_g = delta.gpu.attainable_gflops(2.0, staged=True)
        assert t == pytest.approx(2.0 * 1e9 / (f_g * 1e9))

    def test_cpu_only_time(self, delta):
        t = predicted_runtime(delta, 2.0, 1e9, p=1.0)
        assert t == pytest.approx(2.0 * 1e9 / (64.0 * 1e9))

    def test_rejects_p_outside_unit_interval(self, delta):
        with pytest.raises(ValueError):
            predicted_runtime(delta, 2.0, 1e9, p=1.5)

    def test_speedup_claims_shape(self, delta):
        """§IV headline: GEMV gains ~10x, C-means/GMM ~12%, from co-processing."""
        gemv = AnalyticModel(delta, gemv_intensity(), staged=True)
        cmeans = AnalyticModel(delta, cmeans_intensity(100), staged=False)
        gmm = AnalyticModel(delta, gmm_intensity(10, 60), staged=False)
        assert gemv.speedup_over_gpu_only() > 10.0
        assert 1.05 < cmeans.speedup_over_gpu_only() < 1.3
        assert 1.05 < gmm.speedup_over_gpu_only() < 1.3


class TestMultiDevice:
    def test_fractions_sum_to_one(self, delta_two_gpus):
        fr = multi_device_split(list(delta_two_gpus.devices), 500.0, staged=False)
        assert sum(fr) == pytest.approx(1.0)

    def test_two_identical_gpus_get_equal_share(self, delta_two_gpus):
        fr = multi_device_split(list(delta_two_gpus.devices), 500.0, staged=False)
        assert fr[1] == pytest.approx(fr[2])

    def test_single_device_gets_everything(self, delta):
        assert multi_device_split([delta.cpu], 10.0) == [1.0]

    def test_empty_devices_rejected(self):
        with pytest.raises(ValueError):
            multi_device_split([], 10.0)


class TestNodePartitionWeights:
    def test_homogeneous_cluster_uniform(self, delta4):
        w = node_partition_weights(delta4, 500.0, staged=False)
        assert w == pytest.approx([0.25] * 4)

    def test_heterogeneous_cluster_weights_by_rate(self):
        mixed = Cluster(name="mix",
                        nodes=(delta_node("d", n_gpus=1), bigred2_node("b")))
        w = node_partition_weights(mixed, 1e5, staged=False)
        # BigRed2's K20+Opteron is ~3x a Delta node at high AI.
        assert w[1] > 2.5 * w[0]
        assert sum(w) == pytest.approx(1.0)

    def test_gpu_only_weights(self, delta4):
        w = node_partition_weights(delta4, 500.0, staged=False, use_cpu=False)
        assert sum(w) == pytest.approx(1.0)


class TestFeedbackSplit:
    def test_matches_equation8_on_modelled_rates(self):
        from repro.core.analytic import feedback_split

        node = delta_node(n_gpus=1)
        profile = cmeans_intensity(100)
        decision = workload_split(node, profile, staged=False)
        a = profile.at(1e9)
        p = feedback_split(a, a, decision.cpu_rate, decision.gpu_rate)
        assert p == pytest.approx(decision.p, rel=1e-9)

    def test_equal_rates_split_evenly(self):
        from repro.core.analytic import feedback_split

        assert feedback_split(1.0, 1.0, 50.0, 50.0) == pytest.approx(0.5)

    def test_idle_device_pins_split(self):
        from repro.core.analytic import feedback_split

        assert feedback_split(1.0, 1.0, 0.0, 10.0) == 0.0
        assert feedback_split(1.0, 1.0, 10.0, 0.0) == 1.0

    def test_both_idle_raises(self):
        from repro.core.analytic import feedback_split

        with pytest.raises(ValueError):
            feedback_split(1.0, 1.0, 0.0, 0.0)

    def test_rejects_nonpositive_intensity(self):
        from repro.core.analytic import feedback_split

        with pytest.raises(ValueError):
            feedback_split(0.0, 1.0, 1.0, 1.0)

    @given(
        cpu=st.floats(min_value=1.0, max_value=1e4),
        gpu=st.floats(min_value=1.0, max_value=1e4),
        a=st.floats(min_value=0.01, max_value=1e3),
    )
    @settings(max_examples=50)
    def test_fraction_bounds_and_monotonicity(self, cpu, gpu, a):
        from repro.core.analytic import feedback_split

        p = feedback_split(a, a, cpu, gpu)
        assert 0.0 < p < 1.0
        faster_cpu = feedback_split(a, a, cpu * 2.0, gpu)
        assert faster_cpu > p


class TestObserveDeviceRate:
    def test_observation_from_trace(self):
        from repro.core.analytic import observe_device_rate
        from repro.simulate.trace import Trace

        t = Trace()
        t.record("k", "n.cpu", "compute", 0.0, 2.0, flops=6e9)
        obs = observe_device_rate(t, "n.cpu")
        assert obs.flops == 6e9
        assert obs.busy_seconds == 2.0
        assert obs.gflops == pytest.approx(3.0)

    def test_windowed_observation(self):
        from repro.core.analytic import observe_device_rate
        from repro.simulate.trace import Trace

        t = Trace()
        t.record("old", "n.cpu", "compute", 0.0, 1.0, flops=1e9)
        t.record("new", "n.cpu", "compute", 4.0, 5.0, flops=8e9)
        obs = observe_device_rate(t, "n.cpu", since=4.0)
        assert obs.gflops == pytest.approx(8.0)

    def test_idle_device_zero_rate(self):
        from repro.core.analytic import observe_device_rate
        from repro.simulate.trace import Trace

        assert observe_device_rate(Trace(), "n.gpu0").gflops == 0.0
