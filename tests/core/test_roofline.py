"""Unit tests for the roofline model (Figure 3)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.roofline import RooflineModel, roofline_curve


class TestRidgePoints:
    def test_delta_cpu_ridge(self, delta):
        # A_cr = 130 / 32 ~= 4.06 flops/byte
        model = RooflineModel(delta.cpu)
        assert model.ridge == pytest.approx(130.0 / 32.0)

    def test_delta_gpu_staged_ridge_far_right(self, delta):
        # With PCI-E staging A_gr is three orders beyond A_cr (Figure 3).
        cpu = RooflineModel(delta.cpu)
        gpu = RooflineModel(delta.gpu, staged=True)
        assert gpu.ridge > 100 * cpu.ridge

    def test_resident_ridge_is_dram_only(self, delta):
        gpu = RooflineModel(delta.gpu, staged=False)
        assert gpu.ridge == pytest.approx(1030.0 / 144.0)


class TestTime:
    def test_time_compute_bound(self, delta):
        model = RooflineModel(delta.cpu)
        # 130 GFLOP at AI far above ridge: exactly one second at peak.
        t = model.time(flops=130e9, nbytes=130e9 / 1000.0)
        assert t == pytest.approx(1.0)

    def test_time_bandwidth_bound(self, delta):
        model = RooflineModel(delta.cpu)
        # 32 GB at AI below ridge: one second at DRAM bandwidth.
        t = model.time(flops=32e9 * 2.0, nbytes=32e9)
        assert t == pytest.approx(1.0)

    def test_time_equals_max_of_transfer_and_compute(self, delta):
        model = RooflineModel(delta.gpu, staged=True)
        flops, nbytes = 1e12, 1e9
        t = model.time(flops, nbytes)
        assert t == pytest.approx(
            max(model.transfer_time(nbytes), model.compute_time(flops)), rel=1e-9
        )

    @given(flops=st.floats(1e3, 1e15), nbytes=st.floats(1e3, 1e12))
    def test_time_positive_and_bounded_below(self, delta, flops, nbytes):
        model = RooflineModel(delta.gpu, staged=True)
        t = model.time(flops, nbytes)
        assert t >= model.compute_time(flops) - 1e-15
        assert t >= model.transfer_time(nbytes) * (1 - 1e-12)


class TestCurve:
    def test_curve_shape(self, delta):
        ais, perf = roofline_curve(delta.gpu)
        assert ais.shape == perf.shape
        assert np.all(np.diff(perf) >= -1e-9)  # monotone non-decreasing

    def test_curve_saturates_at_peak(self, delta):
        _, perf = roofline_curve(delta.gpu, hi=2.0**14)
        assert perf[-1] == pytest.approx(delta.gpu.peak_gflops)

    def test_curve_left_arm_is_linear_in_ai(self, delta):
        ais, perf = roofline_curve(delta.cpu, lo=2.0**-4, hi=1.0)
        np.testing.assert_allclose(perf, ais * 32.0, rtol=1e-12)

    def test_curve_rejects_bad_range(self, delta):
        with pytest.raises(ValueError):
            roofline_curve(delta.cpu, lo=4.0, hi=2.0)
