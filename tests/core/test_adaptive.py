"""Tests for the Qilin-style adaptive mapper (profiling comparator)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adaptive import (
    AdaptiveMapper,
    LinearFit,
    roofline_slice_timer,
)
from repro.core.analytic import workload_split
from repro.core.intensity import cmeans_intensity, gemv_intensity


class TestLinearFit:
    def test_evaluates(self):
        fit = LinearFit(intercept=1.0, slope=0.5)
        assert fit(10) == 6.0


class TestTraining:
    def test_training_sizes_bounded_by_fraction(self):
        mapper = AdaptiveMapper(train_fraction=0.05, n_train_points=3)
        sizes = mapper._training_sizes(100_000)
        assert max(sizes) == 5000
        assert len(sizes) <= 3

    def test_fit_recovers_linear_model(self):
        mapper = AdaptiveMapper()
        fit = mapper._fit([10, 100, 1000], [1.2, 3.0, 21.0])
        # slope = 0.02, intercept = 1.0 exactly for these points
        assert fit.slope == pytest.approx(0.02, rel=1e-6)
        assert fit.intercept == pytest.approx(1.0, rel=1e-6)

    def test_database_skips_retraining(self, delta):
        mapper = AdaptiveMapper()
        calls = []

        def timer(device, size):
            calls.append((device, size))
            return 1e-6 * size

        mapper.decide("cmeans", 10_000, timer)
        first = len(calls)
        assert first > 0
        decision = mapper.decide("cmeans", 10_000, timer)
        assert len(calls) == first  # no new training runs
        assert decision.from_database
        assert decision.training_seconds == 0.0

    def test_distinct_apps_train_separately(self):
        mapper = AdaptiveMapper()
        timer = lambda device, size: 1e-6 * size
        mapper.decide("a", 1000, timer)
        mapper.decide("b", 1000, timer)
        assert len(mapper.database) == 4

    def test_rejects_zero_train_fraction(self):
        with pytest.raises(ValueError):
            AdaptiveMapper(train_fraction=0.0)


class TestDecisions:
    def test_converges_to_analytic_p_low_intensity(self, delta):
        """With perfect linear timings, Qilin's p must agree with the
        analytic model's — the paper's point is the *overhead*, not the
        answer."""
        timer = roofline_slice_timer(delta, 2.0, item_bytes=256.0, staged=True)
        decision = AdaptiveMapper().decide("gemv", 100_000, timer)
        analytic = workload_split(delta, gemv_intensity(), staged=True)
        assert decision.p == pytest.approx(analytic.p, abs=0.01)

    def test_converges_to_analytic_p_high_intensity(self, delta):
        timer = roofline_slice_timer(
            delta, 500.0, item_bytes=400.0, staged=False
        )
        decision = AdaptiveMapper().decide("cmeans", 100_000, timer)
        analytic = workload_split(delta, cmeans_intensity(100), staged=False)
        assert decision.p == pytest.approx(analytic.p, abs=0.01)

    def test_training_overhead_is_positive(self, delta):
        timer = roofline_slice_timer(delta, 50.0, item_bytes=64.0)
        decision = AdaptiveMapper().decide("x", 1_000_000, timer)
        assert decision.training_seconds > 0.0

    def test_degenerate_all_cpu(self, delta):
        """If the GPU path is catastrophically slow, p -> 1."""
        def timer(device, size):
            return size * (1e-9 if device == "cpu" else 1e-3)

        decision = AdaptiveMapper().decide("slowgpu", 10_000, timer)
        assert decision.p > 0.99

    @settings(max_examples=20, deadline=None)
    @given(ai=st.floats(0.5, 5000.0))
    def test_p_tracks_analytic_across_intensities(self, delta, ai):
        timer = roofline_slice_timer(delta, ai, item_bytes=128.0, staged=True)
        decision = AdaptiveMapper().decide(f"app{ai}", 200_000, timer)
        analytic = workload_split(delta, ai, staged=True)
        assert decision.p == pytest.approx(analytic.p, abs=0.02)
