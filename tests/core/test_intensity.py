"""Unit and property tests for arithmetic-intensity profiles."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.intensity import (
    APPLICATION_INTENSITIES,
    BlockScaledIntensity,
    ConstantIntensity,
    IntensityProfile,
    cmeans_intensity,
    dgemm_intensity,
    fft_intensity,
    gemv_intensity,
    gmm_intensity,
    kmeans_intensity,
    wordcount_intensity,
)


class TestPaperValues:
    """Table 5 pins the intensities; these are exact requirements."""

    def test_gemv_is_2(self):
        assert gemv_intensity().at(1e6) == 2.0

    def test_cmeans_is_5M(self):
        assert cmeans_intensity(100).at(1e6) == 500.0

    def test_gmm_is_11MD(self):
        assert gmm_intensity(10, 60).at(1e6) == 11.0 * 10 * 60

    def test_figure4_ordering(self):
        """Figure 4: wordcount < GEMV < FFT < C-means < GMM < DGEMM(large)."""
        probe = 1e9
        seq = [
            wordcount_intensity(), gemv_intensity(), fft_intensity(),
            cmeans_intensity(100), gmm_intensity(10, 60),
        ]
        values = [p.at(probe) for p in seq]
        assert values == sorted(values)
        # DGEMM's O(N) intensity overtakes everything at large blocks
        # (a 50k x 50k SP block is ~30 GB).
        assert dgemm_intensity().at(12.0 * 50_000.0**2) > values[-1]

    def test_kmeans_cheaper_than_cmeans(self):
        assert kmeans_intensity(10).at(1e6) < cmeans_intensity(10).at(1e6)


class TestConstantIntensity:
    def test_flops_scale_linearly(self):
        prof = ConstantIntensity(3.0)
        assert prof.flops(10.0) == 30.0

    def test_is_constant(self):
        assert ConstantIntensity(1.0).is_constant()
        assert not dgemm_intensity().is_constant()

    def test_inverse_when_reachable(self):
        assert ConstantIntensity(5.0).inverse(3.0) == 1.0

    def test_inverse_unreachable_raises(self):
        with pytest.raises(ValueError, match="never reaches"):
            ConstantIntensity(2.0).inverse(10.0)

    def test_rejects_nonpositive_value(self):
        with pytest.raises(ValueError):
            ConstantIntensity(0.0)


class TestBlockScaledIntensity:
    def test_dgemm_growth_matches_closed_form(self):
        # A(B) = sqrt(B/12)/6 for square SP GEMM.
        prof = dgemm_intensity()
        nbytes = 12.0 * 1000.0**2  # n = 1000
        assert prof.at(nbytes) == pytest.approx(1000.0 / 6.0)

    def test_inverse_closed_form_roundtrip(self):
        prof = BlockScaledIntensity(coefficient=0.5, exponent=0.5)
        b = prof.inverse(10.0)
        assert prof.at(b) == pytest.approx(10.0)

    @given(st.floats(0.01, 1e3))
    def test_inverse_is_true_inverse(self, target):
        prof = dgemm_intensity()
        b = prof.inverse(target)
        assert prof.at(b) == pytest.approx(target, rel=1e-6)

    @given(st.floats(1.0, 1e12), st.floats(1.0, 1e12))
    def test_monotone_in_block_size(self, b1, b2):
        prof = dgemm_intensity()
        lo, hi = sorted((b1, b2))
        assert prof.at(lo) <= prof.at(hi) + 1e-12


class TestGenericInverseBisection:
    """Exercise the default bisection on a profile without closed inverse."""

    class LogProfile(IntensityProfile):
        label = "log"

        def at(self, nbytes):
            return math.log2(1.0 + nbytes)

    def test_bisection_finds_crossing(self):
        prof = self.LogProfile()
        b = prof.inverse(10.0)
        assert prof.at(b) >= 10.0
        # and it is nearly the minimal such block
        assert prof.at(b * 0.99) <= 10.0 + 1e-6


class TestCatalogue:
    def test_catalogue_has_table5_apps(self):
        for name in ("gemv", "cmeans", "gmm"):
            assert name in APPLICATION_INTENSITIES

    def test_catalogue_profiles_evaluate(self):
        for name, prof in APPLICATION_INTENSITIES.items():
            assert prof.at(1e6) > 0, name
