"""Tests for the network-aware analytic extension (paper future work a)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.network_aware import (
    coprocessing_gain,
    network_aware_split,
)
from repro.core.analytic import workload_split
from repro.hardware.cluster import NetworkSpec

FAST_NET = NetworkSpec(latency=2e-6, bandwidth=100.0)
SLOW_NET = NetworkSpec(latency=2e-6, bandwidth=0.05)


class TestDegenerateCases:
    def test_gamma_zero_recovers_equation8(self, delta):
        plain = workload_split(delta, 50.0, staged=True)
        ext = network_aware_split(delta, 50.0, gamma=0.0, network=SLOW_NET)
        assert ext.p == pytest.approx(plain.p, rel=1e-12)
        assert not ext.cpu_network_bound and not ext.gpu_network_bound

    def test_fast_network_recovers_equation8(self, delta):
        plain = workload_split(delta, 50.0, staged=True)
        ext = network_aware_split(delta, 50.0, gamma=0.1, network=FAST_NET)
        assert ext.p == pytest.approx(plain.p, rel=1e-12)

    def test_plain_p_always_reported(self, delta):
        ext = network_aware_split(delta, 50.0, gamma=5.0, network=SLOW_NET)
        plain = workload_split(delta, 50.0, staged=True)
        assert ext.plain_p == pytest.approx(plain.p, rel=1e-12)


class TestNetworkBoundRegime:
    def test_heavy_shuffle_caps_both_devices(self, delta):
        ext = network_aware_split(delta, 500.0, gamma=100.0, network=SLOW_NET)
        assert ext.cpu_network_bound and ext.gpu_network_bound

    def test_fully_capped_split_is_half(self, delta):
        ext = network_aware_split(delta, 500.0, gamma=100.0, network=SLOW_NET)
        assert ext.p == pytest.approx(0.5)

    def test_fully_capped_gain_is_one(self, delta):
        """Co-processing stops paying when the NIC is the bottleneck."""
        ext = network_aware_split(delta, 500.0, gamma=100.0, network=SLOW_NET)
        assert coprocessing_gain(ext) == 1.0

    def test_partially_capped_shifts_toward_cpu(self, delta):
        """High-AI app: GPU is much faster, so the NIC caps the GPU first,
        pushing relative share back toward the CPU."""
        plain = workload_split(delta, 1e4, staged=True)
        # gamma chosen so the GPU (fast) is capped but the CPU is not.
        ext = network_aware_split(delta, 1e4, gamma=2.0, network=SLOW_NET)
        assert ext.gpu_network_bound and not ext.cpu_network_bound
        assert ext.p > plain.p

    def test_gain_reduces_under_network_pressure(self, delta):
        free = network_aware_split(delta, 2.0, gamma=0.0, network=SLOW_NET)
        tight = network_aware_split(delta, 2.0, gamma=2.0, network=SLOW_NET)
        assert coprocessing_gain(tight) <= coprocessing_gain(free) + 1e-12


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        ai=st.floats(0.5, 1e4),
        gamma=st.floats(0.0, 50.0),
        bandwidth=st.floats(0.01, 50.0),
    )
    def test_p_in_unit_interval(self, delta, ai, gamma, bandwidth):
        net = NetworkSpec(latency=1e-6, bandwidth=bandwidth)
        ext = network_aware_split(delta, ai, gamma=gamma, network=net)
        assert 0.0 < ext.p < 1.0

    @settings(max_examples=40, deadline=None)
    @given(ai=st.floats(0.5, 1e4), gamma=st.floats(0.0, 50.0))
    def test_gain_at_least_one(self, delta, ai, gamma):
        ext = network_aware_split(delta, ai, gamma=gamma, network=SLOW_NET)
        assert coprocessing_gain(ext) >= 1.0 - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(ai=st.floats(0.5, 1e4))
    def test_node_throughput_monotone_in_gamma(self, delta, ai):
        """Absolute node drain rate never *increases* with shuffle load.

        (The *relative* co-processing gain is not monotone: capping the
        faster device equalizes the two rates first, raising the relative
        benefit of the second device before the NIC saturates both.)
        """
        rates = [
            (lambda e: e.cpu_rate_bytes + e.gpu_rate_bytes)(
                network_aware_split(delta, ai, gamma=g, network=SLOW_NET)
            )
            for g in (0.0, 0.5, 2.0, 10.0, 100.0)
        ]
        assert all(b <= a + 1e-6 for a, b in zip(rates, rates[1:]))

    def test_saturated_gain_is_exactly_one(self, delta):
        ext = network_aware_split(delta, 1e3, gamma=50.0, network=SLOW_NET)
        assert ext.cpu_network_bound and ext.gpu_network_bound
        assert coprocessing_gain(ext) == 1.0

    def test_rejects_negative_gamma(self, delta):
        with pytest.raises(ValueError):
            network_aware_split(delta, 2.0, gamma=-1.0, network=SLOW_NET)
