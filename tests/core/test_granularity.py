"""Tests for task granularity (Equations 9-11, §III.B.3b)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.granularity import (
    cpu_block_count,
    min_block_size,
    overlap_percentage,
    plan_granularity,
    should_use_streams,
)
from repro.core.intensity import (
    ConstantIntensity,
    cmeans_intensity,
    dgemm_intensity,
    gemv_intensity,
)


class TestOverlapPercentage:
    def test_closed_form(self, delta):
        """Check Equation (9) term by term on the Delta GPU."""
        gpu = delta.gpu
        bs, a_g = 1e6, 10.0
        transfer = bs / gpu.dram_bandwidth + bs / gpu.pcie_bandwidth
        compute = bs * a_g / gpu.peak_gflops
        expected = transfer / (transfer + compute)
        assert overlap_percentage(gpu, a_g, bs) == pytest.approx(expected)

    def test_constant_intensity_block_size_invariant(self, delta):
        """The B_s factors cancel for constant-AI applications."""
        op1 = overlap_percentage(delta.gpu, 50.0, 1e5)
        op2 = overlap_percentage(delta.gpu, 50.0, 1e9)
        assert op1 == pytest.approx(op2)

    def test_low_intensity_is_transfer_dominated(self, delta):
        assert overlap_percentage(delta.gpu, gemv_intensity(), 1e6) > 0.95

    def test_high_intensity_is_compute_dominated(self, delta):
        assert overlap_percentage(delta.gpu, ConstantIntensity(1e5), 1e6) < 0.05

    def test_blas3_overlap_falls_with_block_size(self, delta):
        """O(N) intensity: bigger blocks => relatively less transfer."""
        prof = dgemm_intensity()
        assert (overlap_percentage(delta.gpu, prof, 1e9)
                < overlap_percentage(delta.gpu, prof, 1e6))

    def test_rejects_cpu(self, delta):
        with pytest.raises(ValueError):
            overlap_percentage(delta.cpu, 1.0, 1e6)

    @settings(max_examples=30, deadline=None)
    @given(ai=st.floats(0.01, 1e5), bs=st.floats(1e3, 1e10))
    def test_in_unit_interval(self, delta, ai, bs):
        assert 0.0 < overlap_percentage(delta.gpu, ai, bs) < 1.0


class TestMinBlockSize:
    def test_dgemm_minbs_reaches_ridge(self, delta):
        prof = dgemm_intensity()
        minbs = min_block_size(delta.gpu, prof)
        ridge = delta.gpu.ridge_point(staged=True)
        assert prof.at(minbs) == pytest.approx(ridge, rel=1e-6)

    def test_constant_below_ridge_unsaturable(self, delta):
        with pytest.raises(ValueError):
            min_block_size(delta.gpu, gemv_intensity())

    def test_constant_above_ridge_any_size(self, delta):
        prof = ConstantIntensity(2 * delta.gpu.ridge_point(staged=True))
        assert min_block_size(delta.gpu, prof) == 1.0

    def test_rejects_cpu(self, delta):
        with pytest.raises(ValueError):
            min_block_size(delta.cpu, dgemm_intensity())


class TestStreamDecision:
    def test_gemv_uses_streams_despite_no_saturation(self, delta):
        """Transfer-dominated and unsaturable: overlap is all you can do."""
        assert should_use_streams(delta.gpu, gemv_intensity(), 1e8)

    def test_compute_dominated_app_skips_streams(self, delta):
        """'Otherwise there will not be much overlap to hide the overhead'."""
        prof = ConstantIntensity(1e5)
        assert not should_use_streams(delta.gpu, prof, 1e9)

    def test_blas3_below_minbs_skips_streams(self, delta):
        prof = dgemm_intensity()
        minbs = min_block_size(delta.gpu, prof)
        assert not should_use_streams(delta.gpu, prof, minbs * 0.5)

    def test_blas3_above_minbs_with_overlap(self, delta):
        prof = dgemm_intensity()
        minbs = min_block_size(delta.gpu, prof)
        # Just above MinBs the overlap is ~50% (ridge point): streams on.
        assert should_use_streams(delta.gpu, prof, minbs * 4)


class TestCpuBlocks:
    def test_default_multiplier(self, delta):
        assert cpu_block_count(delta.cpu.cores) == 48

    def test_custom_multiplier(self):
        assert cpu_block_count(8, multiplier=3) == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            cpu_block_count(0)


class TestPlanGranularity:
    def test_plan_for_cmeans_partition(self, delta):
        plan = plan_granularity(
            delta.gpu, delta.cpu.cores, cmeans_intensity(10), 1e8
        )
        assert plan.cpu_blocks == 48
        assert plan.gpu_blocks >= 1
        assert 0.0 < plan.overlap < 1.0

    def test_fermi_window_limits_streams(self, delta):
        """C2070: 1 hardware queue -> at most 2 blocks in flight."""
        plan = plan_granularity(delta.gpu, 12, gemv_intensity(), 1e9)
        assert plan.use_streams
        assert plan.gpu_blocks == 2

    def test_kepler_window_wider(self, bigred2):
        plan = plan_granularity(bigred2.gpu, 32, gemv_intensity(), 1e9)
        assert plan.gpu_blocks > 2

    def test_no_streams_for_compute_bound(self, delta):
        plan = plan_granularity(delta.gpu, 12, ConstantIntensity(1e5), 1e9)
        assert not plan.use_streams
        assert plan.gpu_blocks == 1

    def test_never_splits_below_minbs(self, delta):
        prof = dgemm_intensity()
        minbs = min_block_size(delta.gpu, prof)
        plan = plan_granularity(delta.gpu, 12, prof, minbs * 1.5)
        assert plan.gpu_blocks == 1  # splitting would fall below MinBs
