"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAdvise:
    def test_cmeans_on_delta(self, capsys):
        assert main(["advise", "--node", "delta", "--app", "cmeans"]) == 0
        out = capsys.readouterr().out
        assert "CPU share p" in out
        assert "11.2%" in out  # Table 5 value

    def test_gemv_staged(self, capsys):
        main(["advise", "--node", "delta", "--app", "gemv"])
        out = capsys.readouterr().out
        assert "97.2%" in out
        assert "staged via PCI-E" in out

    def test_resident_flag(self, capsys):
        main(["advise", "--app", "gemv", "--resident"])
        out = capsys.readouterr().out
        assert "resident in GPU memory" in out

    def test_custom_intensity(self, capsys):
        main(["advise", "--intensity", "7.5"])
        out = capsys.readouterr().out
        assert "custom(A=7.5)" in out

    def test_unknown_app_exits(self):
        with pytest.raises(SystemExit):
            main(["advise", "--app", "nonsense"])

    def test_mic_preset(self, capsys):
        assert main(["advise", "--node", "mic", "--app", "gmm"]) == 0
        assert "mic" in capsys.readouterr().out


class TestRoofline:
    @pytest.mark.parametrize("node", ["delta", "bigred2", "mic"])
    def test_prints_ridges(self, capsys, node):
        assert main(["roofline", "--node", node]) == 0
        out = capsys.readouterr().out
        assert "ridge A" in out
        assert "GPU staged" in out


class TestRun:
    def test_cmeans_run(self, capsys):
        code = main([
            "run", "--app", "cmeans", "--size", "2000", "--nodes", "2",
            "--iterations", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "split (eq 8)" in out

    def test_gemv_gpu_only(self, capsys):
        code = main([
            "run", "--app", "gemv", "--size", "1000", "--dims", "32",
            "--gpu-only",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GPU" in out
        assert "split (eq 8)" not in out  # single device class: no split

    def test_wordcount_dynamic(self, capsys):
        code = main([
            "run", "--app", "wordcount", "--size", "50",
            "--scheduling", "dynamic",
        ])
        assert code == 0

    def test_conflicting_device_flags_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--gpu-only", "--cpu-only"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestPoliciesCommand:
    def test_lists_registered_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in (
            "static",
            "dynamic",
            "adaptive-feedback",
            "locality-dynamic",
        ):
            assert name in out


class TestRunPolicyFlag:
    RUN = [
        "run", "--app", "cmeans", "--size", "2000", "--nodes", "2",
        "--iterations", "3",
    ]

    def test_adaptive_feedback_prints_breakdown(self, capsys):
        assert main(self.RUN + ["--policy", "adaptive-feedback"]) == 0
        out = capsys.readouterr().out
        assert "adaptive-feedback" in out
        assert "phase breakdown" in out
        for phase in ("map", "shuffle", "reduce", "gather"):
            assert phase in out

    def test_default_run_prints_policy_and_phases(self, capsys):
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "policy         : static" in out
        assert "phase breakdown" in out

    def test_json_includes_policy_and_phase_breakdown(self, capsys):
        import json

        assert main(self.RUN + ["--policy", "locality-dynamic", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "locality-dynamic"
        assert "-1" in payload["phase_breakdown"]
        assert "map" in payload["phase_breakdown"]["0"]

    def test_unknown_policy_fails(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            main(self.RUN + ["--policy", "nonsense"])

    def test_report_includes_phase_table(self, capsys):
        assert main(self.RUN + ["--report"]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "policy            : static" in out
