"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAdvise:
    def test_cmeans_on_delta(self, capsys):
        assert main(["advise", "--node", "delta", "--app", "cmeans"]) == 0
        out = capsys.readouterr().out
        assert "CPU share p" in out
        assert "11.2%" in out  # Table 5 value

    def test_gemv_staged(self, capsys):
        main(["advise", "--node", "delta", "--app", "gemv"])
        out = capsys.readouterr().out
        assert "97.2%" in out
        assert "staged via PCI-E" in out

    def test_resident_flag(self, capsys):
        main(["advise", "--app", "gemv", "--resident"])
        out = capsys.readouterr().out
        assert "resident in GPU memory" in out

    def test_custom_intensity(self, capsys):
        main(["advise", "--intensity", "7.5"])
        out = capsys.readouterr().out
        assert "custom(A=7.5)" in out

    def test_unknown_app_exits(self):
        with pytest.raises(SystemExit):
            main(["advise", "--app", "nonsense"])

    def test_mic_preset(self, capsys):
        assert main(["advise", "--node", "mic", "--app", "gmm"]) == 0
        assert "mic" in capsys.readouterr().out


class TestRoofline:
    @pytest.mark.parametrize("node", ["delta", "bigred2", "mic"])
    def test_prints_ridges(self, capsys, node):
        assert main(["roofline", "--node", node]) == 0
        out = capsys.readouterr().out
        assert "ridge A" in out
        assert "GPU staged" in out


class TestRun:
    def test_cmeans_run(self, capsys):
        code = main([
            "run", "--app", "cmeans", "--size", "2000", "--nodes", "2",
            "--iterations", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "split (eq 8)" in out

    def test_gemv_gpu_only(self, capsys):
        code = main([
            "run", "--app", "gemv", "--size", "1000", "--dims", "32",
            "--gpu-only",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GPU" in out
        assert "split (eq 8)" not in out  # single device class: no split

    def test_wordcount_dynamic(self, capsys):
        code = main([
            "run", "--app", "wordcount", "--size", "50",
            "--scheduling", "dynamic",
        ])
        assert code == 0

    def test_conflicting_device_flags_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--gpu-only", "--cpu-only"])

    def test_faulted_run_reports_recovery(self, capsys):
        code = main([
            "run", "--app", "cmeans", "--size", "2000", "--nodes", "2",
            "--iterations", "3", "--faults", "gpu_kill@0:t=0.03",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults         : 1 injected" in out
        assert "blocks retried" in out

    def test_faulted_json_includes_recovery(self, capsys):
        import json

        code = main([
            "run", "--app", "cmeans", "--size", "2000", "--nodes", "2",
            "--iterations", "3", "--json",
            "--faults", "gpu_kill@0:t=0.03",
            "--faults", "straggler@1.cpu:factor=2,t0=0.02,t1=0.05",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recovery"]["faults_injected"] >= 1
        assert payload["recovery"]["blocks_retried"] > 0

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(ValueError):
            main(["run", "--faults", "quantum_flip@0:t=1"])

    def test_elastic_run_reports_membership(self, capsys):
        code = main([
            "run", "--app", "gmm", "--size", "2000", "--dims", "6",
            "--nodes", "4", "--iterations", "4", "--initial-nodes", "2",
            "--faults", "join@2:t=0.03",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "membership     : 1 transitions (1 joins, 0 drains" in out
        assert "ranks 2 -> 3" in out

    def test_elastic_json_includes_epochs(self, capsys):
        import json

        code = main([
            "run", "--app", "gmm", "--size", "2000", "--dims", "6",
            "--nodes", "4", "--iterations", "4", "--initial-nodes", "2",
            "--faults", "join@2:t=0.03", "--faults", "drain@2:t=0.05",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        rec = payload["recovery"]
        assert rec["joins"] == 1 and rec["drains"] == 1
        causes = [e["cause"] for e in rec["epochs"]]
        assert causes == ["start", "join", "drain"]
        assert rec["epochs"][0]["members"] == [0, 1]

    def test_bad_autoscale_knob_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--autoscale", "min_nodes=lots"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestProfileFlag:
    RUN = [
        "run", "--app", "cmeans", "--size", "2000", "--nodes", "2",
        "--iterations", "3",
    ]

    def test_profile_writes_chrome_trace(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(self.RUN + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile written: cmeans_profile.trace.json" in out
        assert "observed vs Equation (8)" in out
        assert "phase tiling" in out
        import json

        payload = json.loads((tmp_path / "cmeans_profile.trace.json").read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_profile_out_path(self, capsys, tmp_path):
        target = tmp_path / "custom.json"
        assert main(self.RUN + ["--profile-out", str(target)]) == 0
        assert target.exists()

    def test_json_mode_reports_profile_path(self, capsys, tmp_path):
        import json

        target = tmp_path / "p.json"
        assert main(self.RUN + ["--json", "--profile-out", str(target)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"] == str(target)


class TestMetricsCommand:
    def test_prometheus_exposition(self, capsys):
        code = main([
            "metrics", "--app", "cmeans", "--size", "1000", "--nodes", "1",
            "--iterations", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE prs_device_busy_seconds_total counter" in out
        assert "prs_phase_seconds_total{" in out
        assert 'prs_policy_blocks_dispatched_total{' in out
        assert "prs_job_makespan_seconds" in out

    def test_json_format(self, capsys):
        import json

        code = main([
            "metrics", "--app", "cmeans", "--size", "1000", "--nodes", "1",
            "--iterations", "2", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "prs_device_flops_total" in payload
        assert "prs_job_makespan_seconds" in payload
        # Self-describing shape: HELP/TYPE metadata alongside samples,
        # mirroring the Prometheus text exposition's comment lines.
        for entry in payload.values():
            assert set(entry) == {"help", "type", "samples"}
            assert entry["type"] in {
                "counter", "gauge", "histogram", "untyped"
            }
            assert isinstance(entry["samples"], list)
        assert payload["prs_device_flops_total"]["type"] == "counter"
        assert payload["prs_job_makespan_seconds"]["type"] == "gauge"


class TestTraceExport:
    RUN = [
        "trace", "export", "--app", "cmeans", "--size", "1000",
        "--nodes", "2", "--iterations", "2",
    ]

    def test_chrome_export_with_check(self, capsys, tmp_path):
        target = tmp_path / "out.trace.json"
        assert main(self.RUN + ["--check", "--out", str(target)]) == 0
        out = capsys.readouterr().out
        assert "profile check passed" in out
        import json

        payload = json.loads(target.read_text())
        assert payload["traceEvents"]

    def test_jsonl_export(self, capsys, tmp_path):
        import json

        target = tmp_path / "spans.jsonl"
        assert main(
            self.RUN + ["--format", "jsonl", "--out", str(target)]
        ) == 0
        lines = target.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["name"] for line in lines)

    def test_stdout_export(self, capsys):
        import json

        assert main(self.RUN + ["--out", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traceEvents"]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["trace"])


class TestPoliciesCommand:
    def test_lists_registered_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in (
            "static",
            "dynamic",
            "adaptive-feedback",
            "locality-dynamic",
        ):
            assert name in out


class TestRunPolicyFlag:
    RUN = [
        "run", "--app", "cmeans", "--size", "2000", "--nodes", "2",
        "--iterations", "3",
    ]

    def test_adaptive_feedback_prints_breakdown(self, capsys):
        assert main(self.RUN + ["--policy", "adaptive-feedback"]) == 0
        out = capsys.readouterr().out
        assert "adaptive-feedback" in out
        assert "phase breakdown" in out
        for phase in ("map", "shuffle", "reduce", "gather"):
            assert phase in out

    def test_default_run_prints_policy_and_phases(self, capsys):
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "policy         : static" in out
        assert "phase breakdown" in out

    def test_json_includes_policy_and_phase_breakdown(self, capsys):
        import json

        assert main(self.RUN + ["--policy", "locality-dynamic", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "locality-dynamic"
        assert "-1" in payload["phase_breakdown"]
        assert "map" in payload["phase_breakdown"]["0"]

    def test_unknown_policy_fails(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            main(self.RUN + ["--policy", "nonsense"])

    def test_report_includes_phase_table(self, capsys):
        assert main(self.RUN + ["--report"]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "policy            : static" in out


class TestAnalyzeCommand:
    RUN = [
        "analyze", "--app", "cmeans", "--size", "2000", "--nodes", "2",
        "--iterations", "3",
    ]

    def test_live_run_text_output(self, capsys):
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "critical path (what the makespan was waiting on):" in out
        assert "tiling gap" in out
        assert "top stragglers" in out
        assert "model drift" in out

    def test_check_passes_on_live_run(self, capsys):
        assert main(self.RUN + ["--check"]) == 0
        out = capsys.readouterr().out
        assert "analysis check passed" in out

    def test_comm_section_on_live_run(self, capsys):
        assert main(self.RUN + ["--comm"]) == 0
        out = capsys.readouterr().out
        assert "communication (matched send/recv message spans):" in out
        assert "path waits on" in out
        assert "comm matrix" in out
        assert "link utilization" in out

    def test_comm_section_from_saved_profile(self, capsys, tmp_path):
        target = tmp_path / "run.trace.json"
        assert main([
            "trace", "export", "--app", "cmeans", "--size", "1000",
            "--nodes", "2", "--iterations", "2", "--out", str(target),
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", str(target), "--comm", "--check"]) == 0
        out = capsys.readouterr().out
        assert "comm matrix" in out
        assert "message spans pair 1:1" in out

    def test_comm_json_payload(self, capsys):
        import json

        assert main(self.RUN + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (analysis,) = payload.values()
        comm = analysis["comm"]
        assert comm["messages"] > 0
        assert comm["unpaired_recvs"] == 0
        assert comm["matrix"]
        assert analysis["critical_path"]["slack_decomposition"]

    def test_json_payload(self, capsys):
        import json

        assert main(self.RUN + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (analysis,) = payload.values()
        assert analysis["critical_path"]["tiling_gap_s"] <= 1e-6
        assert analysis["decisions"]
        assert analysis["imbalance"]["devices"]

    def test_saved_profile_analysis(self, capsys, tmp_path):
        target = tmp_path / "run.trace.json"
        assert main([
            "trace", "export", "--app", "cmeans", "--size", "1000",
            "--nodes", "2", "--iterations", "2", "--out", str(target),
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", str(target), "--check"]) == 0
        out = capsys.readouterr().out
        assert f"=== {target}" in out
        assert "analysis check passed" in out

    def test_directory_of_profiles(self, capsys, tmp_path):
        target = tmp_path / "a.trace.json"
        assert main([
            "trace", "export", "--app", "cmeans", "--size", "1000",
            "--nodes", "2", "--iterations", "2", "--out", str(target),
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", str(tmp_path)]) == 0
        assert "critical path" in capsys.readouterr().out

    def test_missing_profile_exits(self):
        with pytest.raises(SystemExit, match="not found"):
            main(["analyze", "/nonexistent/thing.trace.json"])


class TestBenchCommands:
    def test_baseline_then_compare_round_trip(self, capsys, tmp_path):
        import json

        base = tmp_path / "base.json"
        assert main(["bench", "baseline", "--out", str(base)]) == 0
        assert "wrote baseline" in capsys.readouterr().out

        payload = json.loads(base.read_text())
        assert payload["schema_version"] == 3
        assert "cmeans-static" in payload["workloads"]
        assert "gmm-multirank" in payload["workloads"]

        # self-compare via --current: no sweep re-run, must pass
        assert main([
            "bench", "compare", "--baseline", str(base),
            "--current", str(base), "--tolerance", "0.01",
        ]) == 0
        assert "bench compare passed" in capsys.readouterr().out

        # synthetic 2x slowdown: halve every baseline makespan so the
        # same current sweep looks twice as slow
        doctored = json.loads(base.read_text())
        for workload in doctored["workloads"].values():
            workload["metrics"]["makespan_s"] /= 2.0
        bad = tmp_path / "doctored.json"
        bad.write_text(json.dumps(doctored))
        assert main([
            "bench", "compare", "--baseline", str(bad),
            "--current", str(base), "--tolerance", "0.25",
        ]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        assert "bench compare FAILED" in err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["bench"])


class TestRunAnalysisSurface:
    RUN = [
        "run", "--app", "cmeans", "--size", "2000", "--nodes", "2",
        "--iterations", "3",
    ]

    def test_json_includes_analysis_block(self, capsys):
        import json

        assert main(self.RUN + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        analysis = payload["analysis"]
        assert analysis["critical_path"]["tiling_gap_s"] <= 1e-6
        assert analysis["model_drift"] is not None

    def test_report_includes_critical_path_and_stragglers(self, capsys):
        assert main(self.RUN + ["--report"]) == 0
        out = capsys.readouterr().out
        assert "critical path (what the makespan was waiting on):" in out
        assert "top stragglers" in out
        assert "model drift" in out


class TestSelfprofCLI:
    RUN = [
        "run", "--app", "cmeans", "--size", "600", "--nodes", "2",
        "--iterations", "2",
    ]

    def test_run_selfprof_prints_hotspot_report(self, capsys):
        assert main(self.RUN + ["--selfprof"]) == 0
        out = capsys.readouterr().out
        assert "host self-profile" in out
        assert "host wall-clock by subsystem (exclusive):" in out
        assert "engine" in out

    def test_run_selfprof_json_payload(self, capsys):
        import json

        assert main(self.RUN + ["--selfprof", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        host = payload["host"]
        assert host["wall_s"] > 0
        assert host["events_per_sec"] > 0
        assert "engine" in host["sections"]
        assert host["top_exclusive"]

    def test_plain_run_has_no_host_block(self, capsys):
        import json

        assert main(self.RUN + ["--json"]) == 0
        assert "host" not in json.loads(capsys.readouterr().out)

    def test_selfprof_out_then_report(self, capsys, tmp_path):
        target = tmp_path / "host.selfprof.json"
        # --selfprof-out implies --selfprof
        assert main(self.RUN + ["--selfprof-out", str(target)]) == 0
        capsys.readouterr()
        assert target.exists()
        assert main(["selfprof", str(target)]) == 0
        out = capsys.readouterr().out
        assert "host self-profile" in out
        assert "scope path" in out

    def test_selfprof_report_json_and_exports(self, capsys, tmp_path):
        import json

        target = tmp_path / "host.selfprof.json"
        assert main(self.RUN + ["--selfprof-out", str(target)]) == 0
        capsys.readouterr()
        speedscope = tmp_path / "host.speedscope.json"
        collapsed = tmp_path / "host.collapsed.txt"
        assert main([
            "selfprof", str(target), "--json",
            "--speedscope", str(speedscope),
            "--collapsed", str(collapsed),
        ]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["wall_s"] > 0
        assert "engine" in payload["sections"]
        doc = json.loads(speedscope.read_text())
        assert doc["profiles"][0]["unit"] == "seconds"
        assert collapsed.read_text().splitlines()

    def test_selfprof_reads_profile_jsonl(self, capsys, tmp_path):
        profile = tmp_path / "run.profile.jsonl"
        assert main([
            "trace", "export", "--app", "cmeans", "--size", "600",
            "--nodes", "2", "--iterations", "2", "--selfprof",
            "--format", "profile", "--out", str(profile),
        ]) == 0
        capsys.readouterr()
        assert main(["selfprof", str(profile)]) == 0
        assert "host self-profile" in capsys.readouterr().out

    def test_selfprof_rejects_profile_without_host(self, capsys, tmp_path):
        profile = tmp_path / "plain.profile.jsonl"
        assert main([
            "trace", "export", "--app", "cmeans", "--size", "600",
            "--nodes", "2", "--iterations", "2",
            "--format", "profile", "--out", str(profile),
        ]) == 0
        with pytest.raises(SystemExit, match="no host self-profile"):
            main(["selfprof", str(profile)])

    def test_analyze_self_live_run(self, capsys):
        assert main([
            "analyze", "--app", "cmeans", "--size", "600", "--nodes", "2",
            "--iterations", "2", "--self",
        ]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "host self-profile" in out

    def test_analyze_self_json_merges_host(self, capsys):
        import json

        assert main([
            "analyze", "--app", "cmeans", "--size", "600", "--nodes", "2",
            "--iterations", "2", "--self", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        host = payload["cmeans"]["host"]
        assert host["wall_s"] > 0
        assert "engine" in host["sections"]


class TestLogsCommand:
    RUN = [
        "--app", "cmeans", "--size", "600", "--nodes", "2",
        "--iterations", "2", "--log-level", "info",
        "--faults", "gpu_kill@0:t=0.01",
    ]

    def _export(self, tmp_path, capsys):
        profile = tmp_path / "logged.profile.jsonl"
        assert main([
            "trace", "export", *self.RUN,
            "--format", "profile", "--out", str(profile),
        ]) == 0
        capsys.readouterr()  # discard the "wrote N spans" line
        return profile

    def test_run_json_carries_logs_block(self, capsys):
        import json

        assert main(["run", *self.RUN, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        logs = payload["logs"]
        assert logs["level"] == "info"
        assert logs["emitted"] >= logs["records"] >= 0
        assert isinstance(logs["dumps"], list)

    def test_run_text_mentions_event_log(self, capsys):
        assert main(["run", *self.RUN]) == 0
        assert "event log" in capsys.readouterr().out

    def test_logs_reads_saved_profile(self, capsys, tmp_path):
        profile = self._export(tmp_path, capsys)
        assert main(["logs", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "event log: level=info" in out

    def test_logs_filters(self, capsys, tmp_path):
        import json

        profile = self._export(tmp_path, capsys)
        assert main([
            "logs", str(profile), "--level", "info", "--grep", ".", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["level"] == "info"
        for record in payload["records"]:
            assert record["level"] in {"info", "warning", "error"}

    def test_logs_around_span(self, capsys, tmp_path):
        import json

        profile = self._export(tmp_path, capsys)
        assert main(["logs", str(profile), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        spanned = [
            r for r in payload["records"] if r["span_id"] is not None
        ]
        if not spanned:
            pytest.skip("no span-correlated records in this run")
        span_id = spanned[0]["span_id"]
        assert main([
            "logs", str(profile), "--around-span", str(span_id), "--json",
        ]) == 0
        narrowed = json.loads(capsys.readouterr().out)
        assert narrowed["records"]
        assert len(narrowed["records"]) <= len(payload["records"])

    def test_logs_rejects_profile_without_log(self, tmp_path):
        profile = tmp_path / "plain.profile.jsonl"
        assert main([
            "trace", "export", "--app", "cmeans", "--size", "600",
            "--nodes", "2", "--iterations", "2",
            "--format", "profile", "--out", str(profile),
        ]) == 0
        with pytest.raises(SystemExit, match="no event log"):
            main(["logs", str(profile)])

    def test_analyze_check_cross_validates_log(self, capsys):
        assert main([
            "analyze", *self.RUN, "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "ERROR log records pair" in out
