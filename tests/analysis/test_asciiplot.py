"""Tests for the terminal plotting helpers."""

import pytest

from repro.analysis.asciiplot import bar_chart, loglog_plot


class TestLogLogPlot:
    def test_renders_frame_and_legend(self):
        text = loglog_plot(
            {"a": ([1, 10, 100], [1, 10, 100])},
            xlabel="A", ylabel="GF/s",
        )
        assert "legend: * a" in text
        assert "GF/s (log)" in text
        assert "*" in text

    def test_multiple_series_distinct_markers(self):
        text = loglog_plot(
            {"one": ([1, 10], [1, 10]), "two": ([1, 10], [10, 100])}
        )
        assert "* one" in text and "o two" in text
        assert "o" in text.splitlines()[1] or any(
            "o" in line for line in text.splitlines()[:-1]
        )

    def test_monotone_series_ascends(self):
        """A rising curve's markers must climb from bottom-left to
        top-right of the canvas."""
        text = loglog_plot({"up": ([1, 10, 100, 1000], [1, 10, 100, 1000])},
                           width=40, height=10)
        rows = [i for i, line in enumerate(text.splitlines()) if "*" in line]
        cols = []
        for line in text.splitlines():
            if "*" in line:
                cols.append(line.index("*"))
        assert rows == sorted(rows)          # top to bottom
        assert cols == sorted(cols, reverse=True)  # and left to right

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            loglog_plot({"x": ([], [])})

    def test_ignores_nonpositive_points(self):
        text = loglog_plot({"a": ([0, 1, 10], [5, 1, 10])})
        assert "legend" in text


class TestBarChart:
    def test_groups_and_values(self):
        text = bar_chart(
            {"gemv": {"GPU": 2.0, "GPU+CPU": 20.0}},
            width=20, unit=" GF/s",
        )
        assert "gemv GPU " in text
        assert "20 GF/s" in text

    def test_bars_scale_to_max(self):
        text = bar_chart({"g": {"small": 1.0, "big": 10.0}}, width=10)
        lines = [l for l in text.splitlines() if "|" in l]
        small = lines[0].count("#")
        big = lines[1].count("#")
        assert big == 10 and small == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart({})
