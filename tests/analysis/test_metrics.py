"""Tests for clustering metrics and PCA projection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import (
    adjusted_rand_index,
    average_cluster_width,
    best_label_matching,
    cluster_overlap,
    contingency,
)
from repro.analysis.projection import pca_project
from repro.data.synth import gaussian_mixture


class TestAverageWidth:
    def test_tight_clusters_small_width(self):
        pts, labels, _ = gaussian_mixture(500, 3, 2, seed=1, cluster_std=0.1)
        assert average_cluster_width(pts, labels) < 0.5

    def test_scales_with_std(self):
        tight, lt, _ = gaussian_mixture(500, 3, 2, seed=1, cluster_std=0.5)
        loose, ll, _ = gaussian_mixture(500, 3, 2, seed=1, cluster_std=2.0)
        assert average_cluster_width(loose, ll) > average_cluster_width(tight, lt)

    def test_singleton_cluster_zero_width(self):
        pts = np.array([[0.0, 0.0], [5.0, 5.0]])
        labels = np.array([0, 1])
        assert average_cluster_width(pts, labels) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            average_cluster_width(np.zeros((3, 2)), np.zeros(2))


class TestOverlap:
    def test_identical_labels_perfect(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert cluster_overlap(labels, labels) == 1.0

    def test_permuted_labels_perfect(self):
        """Overlap must be label-permutation invariant."""
        ref = np.array([0, 0, 1, 1, 2, 2])
        permuted = np.array([2, 2, 0, 0, 1, 1])
        assert cluster_overlap(permuted, ref) == 1.0

    def test_partial_agreement(self):
        ref = np.array([0, 0, 0, 1, 1, 1])
        pred = np.array([0, 0, 1, 1, 1, 1])
        assert cluster_overlap(pred, ref) == pytest.approx(5 / 6)

    def test_matching_is_injective(self):
        ref = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 2, 2])
        match = best_label_matching(pred, ref)
        assert len(set(match.values())) == len(match)


class TestARI:
    def test_identical_is_one(self):
        labels = np.array([0, 1, 0, 1, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=5000)
        b = rng.integers(0, 4, size=5000)
        assert abs(adjusted_rand_index(a, b)) < 0.02

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=2, max_size=60))
    def test_bounded_above_by_one(self, raw):
        a = np.array(raw)
        rng = np.random.default_rng(1)
        b = rng.integers(0, 3, size=len(raw))
        assert adjusted_rand_index(a, b) <= 1.0 + 1e-12

    def test_contingency_totals(self):
        a = np.array([0, 0, 1])
        b = np.array([1, 1, 0])
        table = contingency(a, b)
        assert table.sum() == 3
        assert table[0, 1] == 2


class TestPCA:
    def test_projection_shape(self):
        pts, _, _ = gaussian_mixture(100, 4, 2, seed=2)
        proj, comps, ratio = pca_project(pts, 3)
        assert proj.shape == (100, 3)
        assert comps.shape == (3, 4)
        assert ratio.shape == (3,)

    def test_components_orthonormal(self):
        pts, _, _ = gaussian_mixture(200, 4, 3, seed=3)
        _, comps, _ = pca_project(pts, 3)
        np.testing.assert_allclose(comps @ comps.T, np.eye(3), atol=1e-10)

    def test_variance_ratio_ordered(self):
        pts, _, _ = gaussian_mixture(200, 4, 3, seed=4)
        _, _, ratio = pca_project(pts, 4)
        assert np.all(np.diff(ratio) <= 1e-12)
        assert ratio.sum() == pytest.approx(1.0)

    def test_preserves_cluster_structure(self):
        """4D->3D on separable clusters keeps them separable (Figure 5)."""
        pts, labels, _ = gaussian_mixture(600, 4, 3, seed=5, spread=20.0)
        proj, _, _ = pca_project(pts, 3)
        from repro.apps.kmeans import nearest_centers

        centers = np.array([proj[labels == j].mean(axis=0) for j in range(3)])
        assigned = nearest_centers(proj, centers)
        assert np.mean(assigned == labels) > 0.99

    def test_too_many_components_rejected(self):
        with pytest.raises(ValueError):
            pca_project(np.zeros((5, 2)), 3)


class TestFormatTable:
    def test_renders_aligned(self):
        from repro.analysis.tables import format_table

        text = format_table(
            ["app", "p"], [["gemv", 0.973], ["cmeans", 0.112]], title="Table 5"
        )
        lines = text.splitlines()
        assert lines[0] == "Table 5"
        assert "gemv" in text and "0.973" in text

    def test_row_length_checked(self):
        from repro.analysis.tables import format_table

        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
