"""Tests for the job-report renderer."""

import pytest

from repro.analysis.report import render_report
from repro.hardware import delta_cluster
from repro.runtime.job import JobConfig, Overheads
from repro.runtime.prs import PRSRuntime

from tests.helpers import CountdownApp, ModSumApp


@pytest.fixture
def cmeans_like_result(delta4):
    app = CountdownApp(n=1_000_000, rounds=4)
    # Quiet overheads so the iteration-0 PCI-E staging is visible rather
    # than hidden behind CPU dispatch costs.
    config = JobConfig(overheads=Overheads(0.0, 0.0, 0.0, 0.0))
    return PRSRuntime(delta4, config).run(app), delta4


class TestRenderReport:
    def test_headline_fields(self, cmeans_like_result):
        result, cluster = cmeans_like_result
        text = render_report(result, cluster)
        for needle in ("makespan", "iterations", "throughput",
                       "network traffic", "per-node rate"):
            assert needle in text

    def test_scheduling_section(self, cmeans_like_result):
        result, cluster = cmeans_like_result
        text = render_report(result, cluster)
        assert "Equation 8" in text
        assert "analytic p" in text
        assert "executed split" in text

    def test_per_device_table(self, cmeans_like_result):
        result, cluster = cmeans_like_result
        text = render_report(result, cluster)
        assert "per-device activity" in text
        assert "delta00.cpu" in text
        assert "delta00.gpu0" in text

    def test_iteration_section_with_staging_callout(self, cmeans_like_result):
        result, cluster = cmeans_like_result
        text = render_report(result, cluster)
        assert "per-iteration timing" in text
        assert "one-off staging overhead" in text

    def test_gantt_optional(self, cmeans_like_result):
        result, cluster = cmeans_like_result
        assert "timeline:" not in render_report(result, cluster)
        assert "timeline:" in render_report(result, cluster, gantt=True)

    def test_single_iteration_job_has_no_iteration_table(self, delta4):
        result = PRSRuntime(delta4, JobConfig()).run(ModSumApp(n=200))
        text = render_report(result, delta4)
        assert "per-iteration timing" not in text

    def test_works_without_cluster(self, cmeans_like_result):
        result, _ = cmeans_like_result
        text = render_report(result)
        assert "makespan" in text
        assert "per-node rate" not in text

    def test_fault_free_report_has_no_recovery_section(self, cmeans_like_result):
        result, cluster = cmeans_like_result
        assert "fault tolerance:" not in render_report(result, cluster)

    def test_faulted_report_renders_recovery_section(self, delta4):
        result = PRSRuntime(
            delta4, JobConfig(faults="gpu_kill@0:t=0.022")
        ).run(ModSumApp(n=4000))
        text = render_report(result, delta4)
        assert "fault tolerance:" in text
        assert "1 fault(s)" in text
        assert "blocks re-executed" in text

    def test_cli_report_flag(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--app", "cmeans", "--size", "1000", "--nodes", "2",
            "--iterations", "3", "--report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-device activity" in out
        assert "timeline:" in out
