"""Comm-graph pairing, the network-aware critical path, and round-trips.

Covers the ISSUE-5 acceptance criteria directly: on a multi-rank GMM run
the critical path must cross rank boundaries via message edges, still
tile ``[0, makespan]`` within 1e-6 s, and report a sender/network/compute
slack decomposition that sums to total slack — plus the fault-plan
satellites (1:1 pairing under msg drop/delay, retransmit annotation
without double-counting, fault-seed determinism) and the Chrome flow-event
round trip.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import SpanTracer
from repro.obs.analyze import analyze_tracer, build_comm_graph, critical_path


def _run_gmm(nodes=4, faults=None, fault_seed=0, size=1200, iterations=3):
    from repro.apps.gmm import GMMApp
    from repro.cli import _cluster_for
    from repro.data.synth import gaussian_mixture
    from repro.runtime.job import JobConfig
    from repro.runtime.prs import PRSRuntime

    pts, _, _ = gaussian_mixture(size, 16, 5, seed=1)
    app = GMMApp(pts, 5, seed=1, max_iterations=iterations)
    config = JobConfig(scheduling="static", faults=faults,
                       fault_seed=fault_seed)
    return PRSRuntime(_cluster_for("delta", nodes), config).run(app)


@pytest.fixture(scope="module")
def gmm_result():
    return _run_gmm()


@pytest.fixture(scope="module")
def gmm_analysis(gmm_result):
    return gmm_result.analyze()


# ---------------------------------------------------------------------------
# Synthetic pairing units
# ---------------------------------------------------------------------------
class TestBuildCommGraph:
    def _tracer_with_message(self, msg_id=1, recv=True):
        tracer = SpanTracer()
        tracer.record(
            "msg r0->r1 t5", "net.r0", 0.0, 0.002, category="net",
            attrs={"msg_id": msg_id, "src": 0, "dst": 1, "src_node": 0,
                   "dst_node": 1, "tag": 5, "tagc": "p2p",
                   "nbytes": 100.0, "link": "remote"},
        )
        if recv:
            tracer.record(
                "recv r0->r1 t5", "net.r1", 0.001, 0.002, category="recv",
                attrs={"msg_id": msg_id, "src": 0, "dst": 1, "tag": 5,
                       "tagc": "p2p", "nbytes": 100.0},
            )
        return tracer

    def test_pairs_send_and_recv(self):
        graph = build_comm_graph(self._tracer_with_message())
        assert len(graph) == 1
        (m,) = graph.messages
        assert (m.src, m.dst, m.tag_class, m.nbytes) == (0, 1, "p2p", 100.0)
        assert m.recv_span_id is not None
        assert graph.edges() == [(m.send_span_id, m.recv_span_id)]
        assert graph.check() == []

    def test_unreceived_send_keeps_message_without_edge(self):
        graph = build_comm_graph(self._tracer_with_message(recv=False))
        assert len(graph) == 1
        assert graph.edges() == []
        assert graph.check() == []

    def test_unpaired_recv_is_reported(self):
        tracer = SpanTracer()
        tracer.record(
            "recv r0->r1 t5", "net.r1", 0.0, 0.001, category="recv",
            attrs={"msg_id": 99, "src": 0, "dst": 1},
        )
        graph = build_comm_graph(tracer)
        assert len(graph.unpaired_recv_span_ids) == 1
        assert any("pair with no send" in p for p in graph.check())

    def test_happens_before_violation_detected(self):
        tracer = SpanTracer()
        tracer.record(
            "msg", "net.r0", 0.010, 0.020, category="net",
            attrs={"msg_id": 1, "src": 0, "dst": 1, "nbytes": 1.0,
                   "link": "remote"},
        )
        tracer.record(  # receive "completes" before the message is visible
            "recv", "net.r1", 0.0, 0.005, category="recv",
            attrs={"msg_id": 1, "src": 0, "dst": 1},
        )
        graph = build_comm_graph(tracer)
        assert any("happens-before" in p for p in graph.check())

    def test_matrix_and_links(self):
        tracer = self._tracer_with_message()
        tracer.record(
            "msg r0->r1 t5", "net.r0", 0.003, 0.004, category="net",
            attrs={"msg_id": 2, "src": 0, "dst": 1, "src_node": 0,
                   "dst_node": 1, "tag": 5, "tagc": "p2p",
                   "nbytes": 50.0, "link": "remote"},
        )
        graph = build_comm_graph(tracer)
        matrix = graph.matrix()
        assert matrix[(0, 1, "p2p")] == {"messages": 2.0, "bytes": 150.0}
        (link,) = graph.link_timeline()
        assert (link.src_node, link.dst_node) == (0, 1)
        assert link.messages == 2
        assert link.busy_s == pytest.approx(0.003)
        assert graph.link_utilization(0.006)["n0->n1"] == pytest.approx(0.5)

    def test_timeout_spans_are_annotations_not_edges(self):
        tracer = SpanTracer()
        tracer.record(
            "recv r0->r1 t5 timeout", "net.r1", 0.0, 0.5, category="recv",
            attrs={"src": 0, "dst": 1, "tag": 5, "timeout": True},
        )
        graph = build_comm_graph(tracer)
        assert len(graph) == 0
        assert len(graph.timeout_span_ids) == 1
        assert graph.unpaired_recv_span_ids == ()


# ---------------------------------------------------------------------------
# Acceptance: network-aware critical path on a multi-rank run
# ---------------------------------------------------------------------------
class TestNetworkAwareCriticalPath:
    def test_tiling_within_acceptance_bound(self, gmm_analysis):
        assert gmm_analysis.critical_path.tiling_gap <= 1e-6
        assert gmm_analysis.check() == []

    def test_path_crosses_rank_boundaries_via_message_edges(
        self, gmm_analysis
    ):
        cp = gmm_analysis.critical_path
        assert cp.message_hops > 0
        ranks = {t for t in cp.rank_tracks() if t.startswith("rank")}
        assert len(ranks) > 1
        # every network-wait segment is attributed to an actual send span
        net_waits = [s for s in cp.segments if s.wait_on == "network"]
        assert net_waits
        by_send = {m.send_span_id for m in gmm_analysis.comm.messages}
        assert all(
            s.span_id in by_send for s in net_waits if s.span_id is not None
        )

    def test_slack_decomposition_sums_to_total_slack(self, gmm_analysis):
        cp = gmm_analysis.critical_path
        decomp = cp.slack_decomposition()
        assert set(decomp) == {"sender", "network", "compute"}
        assert sum(decomp.values()) == pytest.approx(cp.slack, abs=1e-9)
        assert all(v >= 0.0 for v in decomp.values())

    def test_work_segments_never_carry_wait_on(self, gmm_analysis):
        for seg in gmm_analysis.critical_path.segments:
            if seg.is_work:
                assert seg.wait_on is None
            else:
                assert seg.wait_on in ("sender", "network", "compute")

    def test_without_comm_graph_all_slack_is_compute(self, gmm_result):
        cp = critical_path(
            gmm_result.trace.tracer, makespan=gmm_result.makespan
        )
        assert cp.tiling_gap <= 1e-6
        assert cp.message_hops == 0
        decomp = cp.slack_decomposition()
        assert decomp["sender"] == 0.0
        assert decomp["network"] == 0.0

    def test_every_message_pairs_one_to_one(self, gmm_analysis):
        comm = gmm_analysis.comm
        assert len(comm) > 0
        assert comm.unpaired_recv_span_ids == ()
        recv_ids = [m.recv_span_id for m in comm.messages
                    if m.recv_span_id is not None]
        assert len(recv_ids) == len(set(recv_ids))


# ---------------------------------------------------------------------------
# Satellite: pairing under fault plans
# ---------------------------------------------------------------------------
class TestFaultPlans:
    DROP = "msg_drop@0-1:count=2,t0=0.001"
    DELAY = "msg_delay@0-1:delay=0.002,t0=0.0,t1=1.0"

    @pytest.fixture(scope="class")
    def dropped(self):
        return _run_gmm(faults=self.DROP, fault_seed=7)

    def test_drop_pairing_and_retransmit_annotation(self, dropped):
        comm = build_comm_graph(dropped.trace.tracer)
        assert comm.unpaired_recv_span_ids == ()
        assert comm.total_retransmits == 2
        # retransmits annotate the one delivered message, they are not
        # extra messages: per-pair data-flow message counts match the
        # clean run (heartbeats are time-driven, so the stretched faulty
        # run legitimately has more of them)
        clean = build_comm_graph(_run_gmm().trace.tracer)

        def count(g):
            return {k: v["messages"] for k, v in g.matrix().items()
                    if k[2] != "heartbeat"}

        assert count(comm) == count(clean)
        retried = [m for m in comm.messages if m.retransmits]
        assert retried
        assert sum(m.retransmits for m in retried) == 2
        assert all(
            (m.src_node, m.dst_node) == (0, 1) and m.link == "remote"
            for m in retried
        )

    def test_drop_run_still_passes_checks(self, dropped):
        analysis = dropped.analyze()
        assert analysis.check() == []
        assert analysis.critical_path.tiling_gap <= 1e-6

    def test_delay_is_annotated_and_paired(self):
        result = _run_gmm(faults=self.DELAY, fault_seed=3)
        comm = build_comm_graph(result.trace.tracer)
        assert comm.unpaired_recv_span_ids == ()
        delayed = [m for m in comm.messages if m.delay_s > 0]
        assert delayed
        assert all(
            (m.src_node, m.dst_node) == (0, 1) and
            m.delay_s == pytest.approx(0.002)
            for m in delayed
        )
        assert result.analyze().check() == []

    def test_fault_seed_determinism_of_comm_graph(self):
        a = _run_gmm(faults=self.DROP, fault_seed=7, iterations=2, size=800)
        b = _run_gmm(faults=self.DROP, fault_seed=7, iterations=2, size=800)
        graph_a = build_comm_graph(a.trace.tracer)
        graph_b = build_comm_graph(b.trace.tracer)
        assert [m.to_dict() for m in graph_a.messages] == [
            m.to_dict() for m in graph_b.messages
        ]
        cp_a = critical_path(a.trace.tracer, a.makespan, comm=graph_a)
        cp_b = critical_path(b.trace.tracer, b.makespan, comm=graph_b)
        assert [s.to_dict() for s in cp_a.segments] == [
            s.to_dict() for s in cp_b.segments
        ]


# ---------------------------------------------------------------------------
# Satellite: Chrome flow events + profile round trip
# ---------------------------------------------------------------------------
class TestChromeRoundTrip:
    def test_flow_events_link_matched_spans(self, gmm_result):
        payload = gmm_result.trace.tracer.to_chrome()
        flows = [e for e in payload["traceEvents"]
                 if e.get("cat") == "comm.flow"]
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        finishes = {e["id"] for e in flows if e["ph"] == "f"}
        comm = build_comm_graph(gmm_result.trace.tracer)
        assert starts == {m.msg_id for m in comm.messages}
        assert finishes == {m.msg_id for m in comm.messages
                            if m.recv_span_id is not None}
        assert all(e["bp"] == "e" for e in flows if e["ph"] == "f")

    def test_saved_profile_analyzes_identically(self, gmm_result):
        payload = json.loads(gmm_result.trace.tracer.to_chrome_json())
        reloaded = SpanTracer.from_chrome(payload)

        live = analyze_tracer(gmm_result.trace.tracer)
        saved = analyze_tracer(reloaded)

        assert saved.comm is not None and live.comm is not None
        assert len(saved.comm) == len(live.comm)
        for m_saved, m_live in zip(saved.comm.messages, live.comm.messages):
            d_saved, d_live = m_saved.to_dict(), m_live.to_dict()
            assert d_saved.keys() == d_live.keys()
            for key, value in d_live.items():
                if isinstance(value, float):
                    # timestamps pass through the Chrome export's
                    # microsecond conversion (x1e6 / 1e6): ulp-level noise
                    assert d_saved[key] == pytest.approx(value, abs=1e-12)
                else:
                    assert d_saved[key] == value, key
        assert saved.critical_path.work == pytest.approx(
            live.critical_path.work, abs=1e-9
        )
        assert saved.critical_path.slack == pytest.approx(
            live.critical_path.slack, abs=1e-9
        )
        assert saved.critical_path.slack_decomposition() == pytest.approx(
            live.critical_path.slack_decomposition(), abs=1e-9
        )
        assert saved.critical_path.message_hops == (
            live.critical_path.message_hops
        )
        assert saved.check() == []

    def test_flow_events_survive_json_dump_and_reload(self, tmp_path,
                                                      gmm_result):
        target = tmp_path / "run.trace.json"
        target.write_text(gmm_result.trace.tracer.to_chrome_json())
        reloaded = SpanTracer.from_chrome(json.loads(target.read_text()))
        graph = build_comm_graph(reloaded)
        assert len(graph) == len(build_comm_graph(gmm_result.trace.tracer))
        assert graph.unpaired_recv_span_ids == ()


# ---------------------------------------------------------------------------
# Satellite: comm counters + network-model cross-check
# ---------------------------------------------------------------------------
class TestCommAccounting:
    def test_per_pair_prometheus_counters(self, gmm_result):
        from repro import obs

        exposition = gmm_result.trace.metrics.render()
        assert 'prs_comm_bytes_total{dst="r' in exposition
        assert 'tag="shuffle"' in exposition
        # the labeled counters and the span-level matrix agree
        comm = build_comm_graph(gmm_result.trace.tracer)
        counter = gmm_result.trace.metrics.counter(obs.COMM_BYTES)
        for (src, dst, tagc), cell in comm.matrix().items():
            sampled = {
                dict(labels)["tag"]: value
                for labels, value in counter.samples()
                if dict(labels)["src"] == f"r{src}"
                and dict(labels)["dst"] == f"r{dst}"
            }
            assert sampled[tagc] == pytest.approx(cell["bytes"])

    def test_link_busy_matches_alpha_beta_model_when_fault_free(
        self, gmm_result
    ):
        comm = build_comm_graph(gmm_result.trace.tracer)
        for use in comm.link_timeline():
            assert use.pred_s > 0
            # fault-free, uncontended: observed busy time is exactly the
            # summed alpha/beta predictions unless sends overlapped (then
            # the union is smaller)
            assert use.busy_s <= use.pred_s + 1e-9

    def test_shuffle_phase_annotated_with_outgoing_stats(self, gmm_result):
        shuffles = [
            s for s in gmm_result.trace.tracer.spans
            if s.category == "phase" and s.name == "shuffle"
        ]
        assert shuffles
        for span in shuffles:
            assert span.attrs["shuffle_out_pairs"] >= 0
            assert span.attrs["shuffle_out_bytes"] >= 0
            assert 0 <= span.attrs["shuffle_fanout"] <= 4

    def test_recv_spans_do_not_inflate_device_loads(self, gmm_result):
        from repro.obs.analyze import device_loads

        loads = device_loads(gmm_result.trace.tracer)
        assert all(not d.device.startswith("net.") or d.busy_s >= 0
                   for d in loads)
        # recv waits live on net.* tracks; busy time there must come from
        # send records only (waits excluded), so it can never exceed the
        # summed send-span durations
        comm = build_comm_graph(gmm_result.trace.tracer)
        sent_by_track: dict[str, float] = {}
        for m in comm.messages:
            track = f"net.r{m.src}"
            sent_by_track[track] = sent_by_track.get(track, 0.0) + m.flight_s
        for d in loads:
            if d.device.startswith("net."):
                assert d.busy_s <= sent_by_track.get(d.device, 0.0) + 1e-9
