"""Host-side self-profiler: scope accounting, the zero-perturbation
contract, schema-v2 profile round-trips, and the flamegraph exports."""

import json

import pytest

from repro.apps.cmeans import CMeansApp
from repro.data.synth import gaussian_mixture
from repro.hardware import delta_cluster
from repro.obs.profile import loads_profile, profile_jsonl
from repro.obs.selfprof import ROOT_SCOPE, HostNode, HostProfile, SelfProfiler
from repro.runtime.job import JobConfig
from repro.runtime.prs import PRSRuntime


def run_cmeans(**config_kwargs):
    pts, _, _ = gaussian_mixture(600, 8, 4, seed=3)
    app = CMeansApp(pts, 4, seed=3, max_iterations=3, epsilon=1e-12)
    return PRSRuntime(delta_cluster(2), JobConfig(**config_kwargs)).run(app)


class TestSelfProfilerScopes:
    def test_nested_scope_accounting(self):
        prof = SelfProfiler()
        prof.start()
        prof.begin("kernel:cpu-map")
        prof.begin("alloc:region")
        prof.end()
        prof.end()
        prof.begin("kernel:cpu-map")
        prof.end()
        prof.stop()

        kernel = prof.root.children["kernel:cpu-map"]
        alloc = kernel.children["alloc:region"]
        assert kernel.calls == 2
        assert alloc.calls == 1
        # inclusive nests: the child's time is inside the parent's
        assert kernel.inclusive_s >= alloc.inclusive_s
        assert kernel.exclusive_s == pytest.approx(
            kernel.inclusive_s - alloc.inclusive_s)
        # and the root swallows everything
        assert prof.root.inclusive_s == pytest.approx(prof.wall_s)
        assert prof.root.inclusive_s >= kernel.inclusive_s

    def test_same_name_under_different_parents_gets_own_node(self):
        prof = SelfProfiler()
        prof.start()
        with prof.scope("kernel:cpu-map"):
            prof.begin("alloc:region")
            prof.end()
        with prof.scope("comm:deliver"):
            prof.begin("alloc:region")
            prof.end()
        prof.stop()
        a = prof.root.children["kernel:cpu-map"].children["alloc:region"]
        b = prof.root.children["comm:deliver"].children["alloc:region"]
        assert a is not b
        assert a.calls == b.calls == 1

    def test_call_is_exception_safe(self):
        prof = SelfProfiler()
        prof.start()
        with pytest.raises(RuntimeError, match="boom"):
            prof.call("policy:split", self._raise)
        # the scope still closed: the next begin lands at root depth
        prof.begin("kernel:cpu-map")
        prof.end()
        prof.stop()
        assert prof.root.children["policy:split"].calls == 1
        assert "kernel:cpu-map" in prof.root.children

    @staticmethod
    def _raise():
        raise RuntimeError("boom")

    def test_stop_unwinds_abandoned_scopes(self):
        prof = SelfProfiler()
        prof.start()
        prof.begin("engine:event")
        prof.begin("kernel:cpu-map")  # never ended — simulated crash
        prof.stop()
        assert prof.root.children["engine:event"].calls == 1
        engine = prof.root.children["engine:event"]
        assert engine.children["kernel:cpu-map"].calls == 1
        assert prof.wall_s > 0.0

    def test_stop_unwinds_open_dispatch_frame(self):
        # The engine's coalesced dispatch scope sits on the node stack
        # without a _t0s entry; stop() must close it without
        # double-counting a call.
        prof = SelfProfiler()
        prof.start()
        node = prof.node_for("engine:resume:rank")
        from time import perf_counter

        prof._nodes.append(node)
        prof._open_dispatch = node
        prof._open_t0 = perf_counter()
        node.calls += 1
        prof.stop()
        assert prof._open_dispatch is None
        assert node.calls == 1
        assert node.inclusive_s > 0.0
        assert prof.root.inclusive_s == pytest.approx(prof.wall_s)

    def test_flush_dispatch_noop_when_nothing_open(self):
        prof = SelfProfiler()
        prof.start()
        prof.flush_dispatch()  # must not pop the root frame
        prof.begin("engine:event")
        prof.end()
        prof.stop()
        assert prof.root.children["engine:event"].calls == 1

    def test_start_twice_rejected(self):
        prof = SelfProfiler()
        prof.start()
        with pytest.raises(RuntimeError, match="twice"):
            prof.start()

    def test_stop_before_start_rejected(self):
        with pytest.raises(RuntimeError, match="before start"):
            SelfProfiler().stop()

    def test_dispatch_key_strips_digits_and_memoizes(self):
        prof = SelfProfiler()
        k0 = prof.dispatch_key("rank0", "resume")
        k1 = prof.dispatch_key("rank1", "resume")
        assert k0 == "engine:resume:rank"
        assert k1 == k0
        assert prof.dispatch_key("delta00.gpu1.blk", "resume") == (
            "engine:resume:delta.gpu.blk")
        # memoized: same raw string returns the identical object
        assert prof.dispatch_key("rank0", "resume") is k0

    def test_node_for_returns_stable_root_child(self):
        prof = SelfProfiler()
        node = prof.node_for("engine:timeout")
        assert prof.node_for("engine:timeout") is node
        assert prof.root.children["engine:timeout"] is node


class TestHostProfile:
    def _profile(self):
        prof = SelfProfiler()
        prof.start()
        with prof.scope("kernel:cpu-map"):
            with prof.scope("alloc:region"):
                pass
        with prof.scope("comm:deliver"):
            pass
        return prof.profile(meta={"makespan_s": 2.0, "engine_events": 1000,
                                  "app": "cmeans"})

    def test_section_shares_sum_to_wall(self):
        host = self._profile()
        shares = host.section_shares()
        assert set(shares) >= {"kernel", "alloc", "comm", "other"}
        assert sum(shares.values()) == pytest.approx(host.wall_s, abs=1e-6)

    def test_meta_derived_throughput(self):
        host = self._profile()
        assert host.makespan_s == 2.0
        assert host.engine_events == 1000
        assert host.sim_per_wall == pytest.approx(2.0 / host.wall_s)
        assert host.events_per_sec == pytest.approx(1000 / host.wall_s)

    def test_top_exclusive_ranked_and_normalized(self):
        host = self._profile()
        top = host.top_exclusive(10)
        assert top  # at least the root qualifies
        excl = [row["exclusive_s"] for row in top]
        assert excl == sorted(excl, reverse=True)
        for row in top:
            assert 0.0 <= row["share"] <= 1.0
            assert row["path"].startswith(ROOT_SCOPE)

    def test_dict_round_trip(self):
        host = self._profile()
        clone = HostProfile.from_dict(host.to_dict())
        assert clone.to_dict() == host.to_dict()
        assert clone.wall_s == host.wall_s
        assert clone.meta == host.meta

    def test_newer_schema_rejected(self):
        payload = self._profile().to_dict()
        payload["schema_version"] = HostProfile.SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than this reader"):
            HostProfile.from_dict(payload)

    def test_collapsed_stack_format(self):
        host = self._profile()
        for line in host.to_collapsed().strip().splitlines():
            path, weight = line.rsplit(" ", 1)
            assert path.startswith(ROOT_SCOPE)
            assert int(weight) > 0

    def test_speedscope_export(self):
        host = self._profile()
        doc = json.loads(host.to_speedscope())
        profile = doc["profiles"][0]
        assert profile["unit"] == "seconds"
        assert len(profile["samples"]) == len(profile["weights"])
        assert sum(profile["weights"]) == pytest.approx(
            host.wall_s, rel=1e-3)
        n_frames = len(doc["shared"]["frames"])
        assert all(i < n_frames for s in profile["samples"] for i in s)

    def test_exclusive_floor_at_zero(self):
        node = HostNode("engine:event")
        node.inclusive_s = 1.0
        child = node.children["kernel:x"] = HostNode("kernel:x")
        child.inclusive_s = 1.5  # clock granularity artifact
        assert node.exclusive_s == 0.0


class TestSelfProfiledRun:
    def test_profile_attached_and_attributes_real_work(self):
        result = run_cmeans(selfprof=True)
        host = result.selfprofile
        assert host is not None
        assert host.wall_s > 0.0
        assert host.engine_events == result.engine_events
        assert host.makespan_s == pytest.approx(result.makespan)
        shares = host.section_shares()
        # the big three subsystems must all show up in a real run
        assert {"engine", "kernel", "obs"} <= set(shares)
        assert host.top_exclusive(5)

    def test_disabled_by_default(self):
        assert run_cmeans().selfprofile is None

    def test_zero_perturbation(self):
        plain = run_cmeans()
        prof = run_cmeans(selfprof=True)
        assert prof.engine_events == plain.engine_events
        assert prof.makespan == plain.makespan
        assert prof.sampler_samples == plain.sampler_samples
        assert set(prof.output) == set(plain.output)
        for key, value in prof.output.items():
            other = plain.output[key]
            if hasattr(value, "tobytes"):
                assert value.tobytes() == other.tobytes(), key
            else:
                assert repr(value) == repr(other), key

    def test_profile_jsonl_round_trip(self):
        result = run_cmeans(selfprof=True)
        text = profile_jsonl(result.trace, {"app": "cmeans"},
                             host=result.selfprofile)
        loaded = loads_profile(text)
        assert loaded.host is not None
        assert loaded.host.to_dict() == result.selfprofile.to_dict()

    def test_v1_profile_loads_with_host_none(self):
        result = run_cmeans()
        text = profile_jsonl(result.trace, {"app": "cmeans"})
        assert '"host_profile"' not in text
        assert loads_profile(text).host is None
