"""Structured event log + flight recorder: units, zero-perturbation,
fault/alert dumps, profile schema v3 round-trips, span correlation."""

import json

import pytest

from repro.hardware import delta_cluster
from repro.obs.log import (
    DEFAULT_RING_SIZE,
    DUMP_TAIL,
    LEVELS,
    MAX_DUMPS,
    EventLog,
    FlightDump,
    LogRecord,
    unpaired_errors,
)
from repro.obs.profile import (
    PROFILE_SCHEMA_VERSION,
    loads_profile,
    profile_jsonl,
)
from repro.runtime.job import JobConfig
from repro.runtime.prs import PRSRuntime
from tests.helpers import CountdownApp, ModSumApp


class TestEventLogUnits:
    def test_level_filtering(self):
        log = EventLog(level="warning")
        assert log.debug("x", "dropped", t=0.0) is None
        assert log.info("x", "dropped", t=0.0) is None
        assert log.warning("x", "kept", t=0.0) is not None
        assert log.error("x", "kept", t=0.0) is not None
        assert len(log) == 2
        assert log.emitted == 2
        assert not log.wants_debug and not log.wants_info

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            EventLog(level="verbose")
        log = EventLog()
        with pytest.raises(ValueError, match="unknown log level"):
            log.emit("trace", "x", "m", t=0.0)

    def test_ring_is_bounded_per_rank(self):
        log = EventLog(level="debug", ring_size=4)
        for i in range(10):
            log.info("x", f"m{i}", t=float(i), rank=0)
        log.info("x", "other-rank", t=99.0, rank=1)
        assert log.emitted == 11
        assert len(log) == 5  # 4 retained on rank 0 + 1 on rank 1
        kept = [r.message for r in log.records(rank=0)]
        assert kept == ["m6", "m7", "m8", "m9"]

    def test_records_merge_in_causal_order(self):
        log = EventLog()
        log.info("a", "first", t=5.0, rank=1)
        log.info("b", "second", t=1.0)  # driver ring, later seq
        seqs = [r.seq for r in log.records()]
        assert seqs == sorted(seqs)
        assert [r.message for r in log.records()] == ["first", "second"]
        assert log.ranks() == [-1, 1]

    def test_labels_sorted_and_stringified(self):
        log = EventLog()
        rec = log.info("x", "m", t=0.0, zeta=1, alpha=2.5)
        assert rec.attrs == (("alpha", "2.5"), ("zeta", "1"))
        assert rec.labels() == {"alpha": "2.5", "zeta": "1"}

    def test_span_inheritance_from_bound_phases(self):
        class FakeSpan:
            span_id = 42
            attrs = {"iteration": 3, "dag_node": "map"}

        log = EventLog()
        log.bind_phases({0: FakeSpan()})
        rec = log.info("x", "inside", t=0.0, rank=0)
        assert rec.span_id == 42
        assert rec.labels()["iteration"] == "3"
        assert rec.labels()["dag_node"] == "map"
        # Explicit span_id and rankless records bypass inheritance.
        assert log.info("x", "explicit", t=0.0, rank=0, span_id=7).span_id == 7
        assert log.info("x", "driver", t=0.0).span_id is None

    def test_record_round_trip(self):
        rec = LogRecord(
            seq=3, t=1.5, level="warning", logger="comm", message="m",
            rank=2, span_id=9, attrs=(("k", "v"),),
        )
        assert LogRecord.from_dict(rec.to_dict()) == rec
        assert rec.severity == LEVELS["warning"]

    def test_dump_tail_and_cap(self):
        log = EventLog(level="debug", ring_size=DEFAULT_RING_SIZE)
        for i in range(DUMP_TAIL + 20):
            log.info("x", f"m{i}", t=float(i))
        dump = log.dump("fault", "test", 99.0)
        assert len(dump.records) == DUMP_TAIL
        assert dump.records[-1].message == f"m{DUMP_TAIL + 19}"
        assert [r.seq for r in dump.records] == sorted(
            r.seq for r in dump.records
        )
        for _ in range(MAX_DUMPS + 5):
            log.dump("fault", "storm", 100.0)
        assert len(log.dumps) == MAX_DUMPS
        assert log.dump("fault", "over", 101.0) is None

    def test_flight_dump_round_trip(self):
        log = EventLog()
        log.error("x", "boom", t=1.0, rank=0)
        dump = log.dump("fault", "unit", 1.0)
        clone = FlightDump.from_dict(dump.to_dict())
        assert clone == dump


class TestUnpairedErrors:
    def test_pairing_against_recovery_spans(self):
        from repro.obs.spans import SpanTracer

        log = EventLog()
        log.error("sched", "failure", t=1.0)
        tracer = SpanTracer()
        assert len(unpaired_errors(log, tracer)) == 1
        tracer.record("retry", "recovery.n0", 1.0, 2.0, category="recovery")
        assert unpaired_errors(log, tracer) == []
        # An ERROR after every recovery span closed is unpaired again.
        log.error("sched", "late", t=5.0)
        assert [r.message for r in unpaired_errors(log, tracer)] == ["late"]


def _run(app, **config_kwargs):
    cluster = delta_cluster(n_nodes=2)
    return PRSRuntime(cluster, JobConfig(**config_kwargs)).run(app)


class TestZeroPerturbation:
    def test_logging_is_bitwise_invisible_fault_free(self):
        base = _run(ModSumApp(4000), sample_interval=0.005)
        logged = _run(
            ModSumApp(4000), sample_interval=0.005, log_level="debug"
        )
        assert base.makespan == logged.makespan
        assert base.engine_events == logged.engine_events
        assert base.output == logged.output
        assert base.sampler_samples == logged.sampler_samples
        assert base.logs is None
        assert logged.logs is not None and logged.logs.emitted > 0

    def test_logging_is_bitwise_invisible_under_faults(self):
        kwargs = dict(
            sample_interval=0.005, faults="gpu_kill@0:t=0.022", fault_seed=3
        )
        base = _run(ModSumApp(4000), **kwargs)
        logged = _run(ModSumApp(4000), log_level="info", **kwargs)
        assert base.makespan == logged.makespan
        assert base.engine_events == logged.engine_events
        assert base.output == logged.output
        assert logged.recovery.flight_dumps
        assert logged.recovery.flight_dumps[0].trigger == "fault"

    def test_invalid_log_level_rejected(self):
        with pytest.raises(ValueError, match="log_level"):
            JobConfig(log_level="verbose")


class TestFlightRecorderRankKill:
    def test_rank_kill_dump_resolves_against_saved_profile(self):
        cluster = delta_cluster(n_nodes=3)
        result = PRSRuntime(
            cluster,
            JobConfig(
                faults="rank_kill@1:t=0.03",
                sample_interval=0.005,
                log_level="info",
            ),
        ).run(CountdownApp(400, rounds=6))
        log = result.logs
        triggers = {d.trigger for d in log.dumps}
        assert "fault" in triggers
        errors = log.records(min_level="error")
        assert any("rank_kill" in r.message for r in errors)
        # Causal order inside every dump.
        for dump in log.dumps:
            seqs = [r.seq for r in dump.records]
            assert seqs == sorted(seqs)
        # Every ERROR pairs with a recovery/alert span (analyze --check).
        assert unpaired_errors(log, result.trace.tracer) == []
        # Span ids in the saved profile resolve against its own tracer.
        profile = loads_profile(profile_jsonl(result.trace))
        spanned = [
            r for r in profile.log.records() if r.span_id is not None
        ]
        assert spanned
        for rec in spanned:
            assert profile.tracer.get(rec.span_id) is not None
        # The recovery summary carries the same dumps.
        assert len(result.recovery.flight_dumps) == len(log.dumps)


class TestNetSlowAlertDump:
    def test_alert_dump_contains_triggering_comm_warns(self):
        """A net_slow plan fires link-over-utilization; its flight dump
        must hold the per-message comm WARNs, fault-seed deterministic."""
        from repro.apps.gmm import GMMApp
        from repro.data.synth import gaussian_mixture

        def run_once():
            pts, _, _ = gaussian_mixture(1500, 16, 5, seed=1)
            app = GMMApp(pts, 5, seed=1, max_iterations=4)
            cluster = delta_cluster(n_nodes=4)
            return PRSRuntime(
                cluster,
                JobConfig(
                    faults="net_slow@*:factor=3,t0=0,t1=1",
                    fault_seed=7,
                    log_level="info",
                ),
            ).run(app)

        result = run_once()
        rules = {a.rule for a in result.alerts}
        assert "link-over-utilization" in rules
        alert_dumps = [
            d
            for d in result.logs.dumps
            if d.trigger == "alert" and d.cause == "link-over-utilization"
        ]
        assert alert_dumps
        warns = [
            r
            for r in alert_dumps[0].records
            if r.level == "warning"
            and r.logger == "comm"
            and "slow delivery" in r.message
        ]
        assert warns, "alert dump must carry the triggering comm WARNs"
        # Deterministic under the fixed fault seed.
        again = run_once()
        assert [r.to_dict() for d in result.logs.dumps for r in d.records] \
            == [r.to_dict() for d in again.logs.dumps for r in d.records]


class TestProfileSchemaV3:
    def test_version_is_3(self):
        assert PROFILE_SCHEMA_VERSION == 3

    def test_log_lines_round_trip(self):
        result = _run(
            ModSumApp(4000),
            sample_interval=0.005,
            faults="gpu_kill@0:t=0.022",
            log_level="info",
        )
        text = profile_jsonl(result.trace, {"app": "modsum"})
        kinds = set()
        for line in text.splitlines():
            kinds.update(
                json.loads(line).keys() & {"log_meta", "log", "log_dump"}
            )
        assert kinds == {"log_meta", "log", "log_dump"}
        profile = loads_profile(text)
        live = result.logs
        assert profile.log is not None
        assert profile.log.level == live.level
        assert profile.log.emitted == live.emitted
        assert [r.to_dict() for r in profile.log.records()] == [
            r.to_dict() for r in live.records()
        ]
        assert [d.to_dict() for d in profile.log.dumps] == [
            d.to_dict() for d in live.dumps
        ]

    def test_non_logging_profile_has_no_log_lines(self):
        result = _run(ModSumApp(2000), sample_interval=0.005)
        text = profile_jsonl(result.trace, {"app": "modsum"})
        for line in text.splitlines():
            obj = json.loads(line)
            assert "log" not in obj
            assert "log_meta" not in obj
            assert "log_dump" not in obj
        assert loads_profile(text).log is None

    def test_v1_and_v2_profiles_load_unchanged(self):
        result = _run(ModSumApp(2000), sample_interval=0.005)
        text = profile_jsonl(result.trace, {"app": "modsum"})
        for old_version in (1, 2):
            downgraded = text.replace(
                f'"schema_version": {PROFILE_SCHEMA_VERSION}',
                f'"schema_version": {old_version}',
                1,
            )
            profile = loads_profile(downgraded)
            assert profile.log is None
            assert profile.meta["schema_version"] == old_version
            assert len(profile.tracer) == len(result.trace.tracer)

    def test_recovery_summary_round_trips_flight_dumps(self):
        from repro.runtime.recovery import RecoverySummary

        result = _run(
            ModSumApp(4000),
            sample_interval=0.005,
            faults="gpu_kill@0:t=0.022",
            log_level="info",
        )
        summary = result.recovery
        assert summary.flight_dumps
        clone = RecoverySummary.from_dict(summary.to_dict())
        assert clone.flight_dumps == summary.flight_dumps
