"""Profile serialization round-trips, dashboard rendering, and the CLI
surface that ties them together (`repro dashboard`, `run
--dashboard-out`, `trace export --format profile`)."""

import json

import pytest

from repro.apps.cmeans import CMeansApp
from repro.cli import main
from repro.data.synth import gaussian_mixture
from repro.obs.dashboard import render_dashboard
from repro.obs.profile import (
    PROFILE_SCHEMA_VERSION,
    load_profile,
    loads_profile,
    profile_jsonl,
)
from repro.hardware import delta_cluster
from repro.obs.rules import ALERT_CATEGORY
from repro.runtime.job import JobConfig
from repro.runtime.prs import PRSRuntime


def run_cmeans(**config_kwargs):
    pts, _, _ = gaussian_mixture(600, 8, 4, seed=3)
    app = CMeansApp(pts, 4, seed=3, max_iterations=3, epsilon=1e-12)
    return PRSRuntime(delta_cluster(2), JobConfig(**config_kwargs)).run(app)


class TestProfileRoundTrip:
    def test_spans_series_meta_survive(self):
        result = run_cmeans(sample_interval=1e-3)
        meta = {"app": "cmeans", "makespan_s": result.makespan}
        text = profile_jsonl(result.trace, meta)
        loaded = loads_profile(text)
        assert loaded.meta["app"] == "cmeans"
        assert loaded.meta["schema_version"] == PROFILE_SCHEMA_VERSION
        assert loaded.makespan == result.makespan
        assert len(loaded.tracer.spans) == len(result.trace.tracer.spans)
        assert loaded.bank is not None
        live = result.trace.sampler.bank
        assert loaded.bank.to_jsonl_lines() == live.to_jsonl_lines()

    def test_span_ids_preserved(self):
        result = run_cmeans(sample_interval=1e-3)
        loaded = loads_profile(profile_jsonl(result.trace, {}))
        original = {s.span_id for s in result.trace.tracer.spans}
        assert {s.span_id for s in loaded.tracer.spans} == original

    def test_serialize_is_idempotent_fixed_point(self):
        # parse -> serialize must reproduce the original bytes (modulo
        # the meta header, which we hold constant here).
        result = run_cmeans(sample_interval=1e-3)
        meta = {"app": "cmeans"}
        text = profile_jsonl(result.trace, meta)
        loaded = loads_profile(text)
        lines = text.splitlines()
        reloaded_series = loaded.bank.to_jsonl_lines()
        assert [ln for ln in lines if '"series"' in ln] == reloaded_series

    def test_unsampled_run_has_no_series_lines(self):
        result = run_cmeans(sample_interval=None)
        text = profile_jsonl(result.trace, {})
        loaded = loads_profile(text)
        assert loaded.bank is None
        assert all('"series"' not in ln for ln in text.splitlines()[1:])

    def test_chrome_trace_fallback(self):
        result = run_cmeans(sample_interval=None)
        chrome = result.trace.tracer.to_chrome_json(indent=2)
        loaded = loads_profile(chrome)
        assert loaded.bank is None
        assert loaded.meta == {}
        assert len(loaded.tracer.spans) == len(result.trace.tracer.spans)

    def test_newer_schema_rejected(self):
        line = json.dumps(
            {"profile_meta": {"schema_version": PROFILE_SCHEMA_VERSION + 1}}
        )
        with pytest.raises(ValueError, match="newer than this reader"):
            loads_profile(line + "\n")

    def test_malformed_line_rejected(self):
        text = (
            json.dumps({"profile_meta": {"schema_version": 1}})
            + "\n"
            + json.dumps({"bogus": 1})
            + "\n"
        )
        with pytest.raises(ValueError, match="line 2"):
            loads_profile(text)

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError, match="empty profile"):
            loads_profile("  \n ")

    def test_alert_spans_round_trip(self):
        result = run_cmeans(
            sample_interval=1e-3,
            faults="net_slow@*:factor=3,t0=0,t1=1",
            fault_seed=7,
        )
        live_alerts = result.trace.tracer.find(category=ALERT_CATEGORY)
        assert live_alerts  # the fault plan must fire at least one rule
        loaded = loads_profile(profile_jsonl(result.trace, {}))
        names = sorted(s.name for s in loaded.tracer.find(
            category=ALERT_CATEGORY))
        assert names == sorted(s.name for s in live_alerts)


class TestRenderDashboard:
    def test_deterministic_bytes(self):
        a = run_cmeans(sample_interval=1e-3)
        b = run_cmeans(sample_interval=1e-3)
        page_a = render_dashboard(loads_profile(profile_jsonl(a.trace, {})))
        page_b = render_dashboard(loads_profile(profile_jsonl(b.trace, {})))
        assert page_a == page_b

    def test_sections_present(self):
        result = run_cmeans(sample_interval=1e-3)
        meta = {"app": "cmeans", "makespan_s": result.makespan}
        page = render_dashboard(loads_profile(profile_jsonl(result.trace, meta)))
        for marker in ("<h2>Alerts</h2>", "<h2>Phase timeline</h2>",
                       "<h2>Sampled series</h2>", "prs_device_busy_fraction",
                       "<svg"):
            assert marker in page

    def test_title_override(self):
        result = run_cmeans(sample_interval=1e-3)
        page = render_dashboard(
            loads_profile(profile_jsonl(result.trace, {})),
            title="custom <title>",
        )
        assert "<title>custom &lt;title&gt;</title>" in page

    def test_spans_only_profile_renders(self):
        # A Chrome trace (no series, no meta) must still produce a page.
        result = run_cmeans(sample_interval=None)
        loaded = loads_profile(result.trace.tracer.to_chrome_json())
        page = render_dashboard(loaded)
        assert "<h2>Phase timeline</h2>" in page

    def test_host_section_renders_for_selfprofiled_run(self):
        result = run_cmeans(sample_interval=1e-3, selfprof=True)
        page = render_dashboard(loads_profile(
            profile_jsonl(result.trace, {}, host=result.selfprofile)))
        assert "<h2>Host profile</h2>" in page
        assert "events/sec" in page
        # the subsystem share table lists the engine section
        assert "engine" in page

    def test_no_host_section_without_selfprof(self):
        # A v2 profile without the host_profile line renders exactly the
        # page a v1 reader produced — no host section, byte-identically.
        result = run_cmeans(sample_interval=1e-3)
        page = render_dashboard(loads_profile(
            profile_jsonl(result.trace, {})))
        assert "<h2>Host profile</h2>" not in page


class TestDashboardCLI:
    RUN = [
        "trace", "export", "--app", "cmeans", "--size", "600",
        "--nodes", "2", "--iterations", "2", "--format", "profile",
    ]

    def _export(self, tmp_path, name="run.profile.jsonl"):
        target = tmp_path / name
        assert main(self.RUN + ["--out", str(target)]) == 0
        return target

    def test_profile_export_format(self, capsys, tmp_path):
        target = self._export(tmp_path)
        capsys.readouterr()
        lines = target.read_text().splitlines()
        head = json.loads(lines[0])
        assert head["profile_meta"]["app"] == "cmeans"
        kinds = {
            "meta" if "profile_meta" in obj
            else "span" if "span_id" in obj
            else "series"
            for obj in map(json.loads, lines)
        }
        assert kinds == {"meta", "span", "series"}

    def test_dashboard_from_file(self, capsys, tmp_path):
        target = self._export(tmp_path)
        assert main(["dashboard", str(target)]) == 0
        out = capsys.readouterr().out
        html = tmp_path / "run.dashboard.html"
        assert html.exists()
        assert str(html) in out
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_dashboard_from_directory(self, capsys, tmp_path):
        self._export(tmp_path, "a.profile.jsonl")
        self._export(tmp_path, "b.profile.jsonl")
        assert main(["dashboard", str(tmp_path)]) == 0
        assert (tmp_path / "a.dashboard.html").exists()
        assert (tmp_path / "b.dashboard.html").exists()

    def test_dashboard_to_stdout(self, capsys, tmp_path):
        target = self._export(tmp_path)
        capsys.readouterr()
        assert main(["dashboard", str(target), "--out", "-"]) == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")

    def test_out_with_multiple_inputs_rejected(self, tmp_path):
        a = self._export(tmp_path, "a.profile.jsonl")
        b = self._export(tmp_path, "b.profile.jsonl")
        with pytest.raises(SystemExit):
            main(["dashboard", str(a), str(b), "--out", "x.html"])

    def test_missing_profile_exits(self):
        with pytest.raises(SystemExit):
            main(["dashboard", "does-not-exist.profile.jsonl"])

    def test_empty_directory_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dashboard", str(tmp_path)])

    def test_run_dashboard_out_matches_saved_render(self, capsys, tmp_path):
        # The tentpole acceptance gate: rendering the saved profile must
        # be byte-identical to what the live run wrote.
        shared = [
            "--app", "cmeans", "--size", "600", "--nodes", "2",
            "--iterations", "2",
        ]
        live = tmp_path / "live.html"
        assert main(["run", *shared, "--dashboard-out", str(live)]) == 0
        profile = tmp_path / "saved.profile.jsonl"
        assert main([
            "trace", "export", *shared, "--format", "profile",
            "--out", str(profile),
        ]) == 0
        saved = tmp_path / "saved.html"
        assert main(["dashboard", str(profile), "--out", str(saved)]) == 0
        capsys.readouterr()
        assert live.read_bytes() == saved.read_bytes()


class TestRunSamplingFlags:
    SHARED = [
        "run", "--app", "cmeans", "--size", "600", "--nodes", "2",
        "--iterations", "2", "--json",
    ]

    def _payload(self, capsys, extra=()):
        assert main(self.SHARED + list(extra)) == 0
        return json.loads(capsys.readouterr().out)

    def test_json_reports_sampling_and_alerts(self, capsys):
        payload = self._payload(capsys)
        assert payload["sampling"]["samples"] > 0
        assert payload["sampling"]["interval_s"] == pytest.approx(1e-3)
        assert payload["alerts"] == []  # healthy run stays silent

    def test_no_sample_disables_sampler(self, capsys):
        payload = self._payload(capsys, ["--no-sample"])
        assert payload["sampling"]["samples"] == 0
        assert payload["sampling"]["interval_s"] is None

    def test_sample_interval_override(self, capsys):
        fine = self._payload(capsys, ["--sample-interval", "5e-4"])
        coarse = self._payload(capsys, ["--sample-interval", "2e-3"])
        assert fine["sampling"]["interval_s"] == pytest.approx(5e-4)
        assert fine["sampling"]["samples"] > coarse["sampling"]["samples"]

    def test_sampling_never_perturbs_the_schedule(self, capsys):
        sampled = self._payload(capsys)
        unsampled = self._payload(capsys, ["--no-sample"])
        assert sampled["makespan_s"] == unsampled["makespan_s"]
        assert (sampled["sampling"]["engine_events"]
                == unsampled["sampling"]["engine_events"])

    def test_faulted_json_reports_alert(self, capsys):
        assert main([
            "run", "--app", "gmm", "--size", "1500", "--nodes", "4",
            "--iterations", "4",
            "--faults", "net_slow@*:factor=3,t0=0,t1=1",
            "--fault-seed", "7", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        rules = {a["rule"] for a in payload["alerts"]}
        assert "link-over-utilization" in rules
