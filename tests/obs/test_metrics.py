"""Tests for the metrics registry: types, bucketing, exposition."""

from __future__ import annotations

import math
import random
import re

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    IntervalUnion,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        c = Counter("x_total")
        c.inc(2.0, device="cpu")
        c.inc(3.0, device="cpu")
        c.inc(5.0, device="gpu")
        assert c.value(device="cpu") == 5.0
        assert c.value(device="gpu") == 5.0
        assert c.value(device="mic") == 0.0
        assert c.total() == 10.0

    def test_label_order_does_not_matter(self):
        c = Counter("x_total")
        c.inc(1.0, a="1", b="2")
        c.inc(1.0, b="2", a="1")
        assert c.value(a="1", b="2") == 2.0
        assert len(c) == 1

    def test_negative_increment_rejected(self):
        c = Counter("x_total")
        with pytest.raises(ValueError, match="negative"):
            c.inc(-1.0)

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad name!")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(4.0, node="n0")
        g.inc(2.0, node="n0")
        g.dec(5.0, node="n0")
        assert g.value(node="n0") == 1.0
        g.dec()  # unlabeled series is independent
        assert g.value() == -1.0


class TestHistogramBucketing:
    def test_boundary_observation_counts_into_that_bucket(self):
        # "le" semantics: an observation equal to an upper bound belongs
        # to that bound's bucket, not the next one.
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(4.0)
        series = h._samples[()]
        assert series.bucket_counts == [1, 1, 1, 0]

    def test_below_first_and_above_last_bound(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.0)      # below every finite bound -> first bucket
        h.observe(-3.0)     # negative still lands in the first bucket
        h.observe(100.0)    # beyond the last finite bound -> +Inf bucket
        series = h._samples[()]
        assert series.bucket_counts == [2, 0, 1]
        assert series.count == 3
        assert series.sum == pytest.approx(97.0)

    def test_bounds_sorted_and_deduplicated_with_inf_appended(self):
        h = Histogram("h", buckets=(4.0, 1.0, 4.0, 2.0))
        assert h.bounds == (1.0, 2.0, 4.0, math.inf)

    def test_needs_a_finite_bound(self):
        with pytest.raises(ValueError, match="finite bucket"):
            Histogram("h", buckets=(math.inf,))

    def test_count_and_total_per_label_set(self):
        h = Histogram("h", buckets=COUNT_BUCKETS)
        for depth in (0, 1, 1, 7):
            h.observe(depth, policy="dynamic")
        assert h.count(policy="dynamic") == 4
        assert h.total(policy="dynamic") == 9.0
        assert h.count(policy="static") == 0


class TestHistogramQuantiles:
    def test_interpolated_median(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        # target = 2 observations; cumulative hits 2 inside (1, 2]:
        # lower 1.0 + (2-1)/1 * (2.0-1.0) = 2.0
        assert h.quantile(0.5) == pytest.approx(2.0)

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == 2.0

    def test_empty_series_is_nan(self):
        h = Histogram("h", buckets=(1.0,))
        assert math.isnan(h.quantile(0.5))

    def test_out_of_range_q_rejected(self):
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError, match="outside"):
            h.quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 3

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(TypeError, match="already registered as counter"):
            reg.gauge("a_total")

    def test_iteration_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.counter("a_total")
        assert [m.name for m in reg] == ["a_total", "b_total"]


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", help="jobs run").inc(3, node="n0")
        reg.gauge("p").set(0.25)
        text = reg.render()
        assert "# HELP jobs_total jobs run\n" in text
        assert "# TYPE jobs_total counter\n" in text
        assert 'jobs_total{node="n0"} 3\n' in text
        assert "# TYPE p gauge\n" in text
        assert "p 0.25\n" in text
        assert text.endswith("\n")

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc(1, label='a"b\\c\nd')
        line = [l for l in reg.render().splitlines() if l.startswith("x_total")]
        assert line == ['x_total{label="a\\"b\\\\c\\nd"} 1']

    def test_histogram_exposition_is_cumulative_and_complete(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            h.observe(v, op="map")
        lines = reg.render().splitlines()
        assert '# TYPE lat histogram' in lines
        assert 'lat_bucket{op="map",le="1"} 1' in lines
        assert 'lat_bucket{op="map",le="2"} 2' in lines
        assert 'lat_bucket{op="map",le="+Inf"} 3' in lines
        assert 'lat_sum{op="map"} 7' in lines
        assert 'lat_count{op="map"} 3' in lines

    def test_every_sample_line_is_well_formed(self):
        # promtool-style sanity: every non-comment line is
        # name{labels}? value
        reg = MetricsRegistry()
        reg.counter("a_total").inc(1.5, x="1")
        reg.gauge("b").set(-2.0)
        reg.histogram("c", buckets=(0.1,)).observe(0.05)
        pattern = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$'
        )
        for line in reg.render().splitlines():
            if line.startswith("#"):
                continue
            assert pattern.match(line), line

    def test_golden_text_with_sorted_label_sets(self):
        # Byte-for-byte golden: label sets render sorted regardless of
        # the order they were first touched, so the exposition of a
        # deterministic run is stable enough to diff / hash in CI.
        reg = MetricsRegistry()
        jobs = reg.counter("jobs_total", help="jobs run")
        jobs.inc(3, node="n1")  # n1 touched before n0 on purpose
        jobs.inc(1, node="n0")
        reg.gauge("depth", help="queue depth").set(4, policy="dynamic")
        assert reg.render() == (
            "# HELP depth queue depth\n"
            "# TYPE depth gauge\n"
            'depth{policy="dynamic"} 4\n'
            "# HELP jobs_total jobs run\n"
            "# TYPE jobs_total counter\n"
            'jobs_total{node="n0"} 1\n'
            'jobs_total{node="n1"} 3\n'
        )

    def test_exposition_byte_stable_across_touch_order(self):
        def build(order):
            reg = MetricsRegistry()
            counter = reg.counter("a_total")
            gauge = reg.gauge("g")
            hist = reg.histogram("h", buckets=(1.0, 2.0))
            for node in order:
                counter.inc(1, node=node)
                gauge.set(float(len(node)), node=node)
                hist.observe(1.5, node=node)
            return reg.render()

        orders = [["n1", "n0", "n2"], ["n2", "n1", "n0"], ["n0", "n2", "n1"]]
        rendered = {build(order) for order in orders}
        assert len(rendered) == 1

    def test_to_dict_round_trips_through_json(self):
        import json

        reg = MetricsRegistry()
        reg.counter("a_total").inc(2, d="cpu")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        payload = json.loads(json.dumps(reg.to_dict()))
        assert payload["a_total"] == [{"labels": {"d": "cpu"}, "value": 2.0}]
        assert payload["h"][0]["count"] == 1
        assert payload["h"][0]["buckets"] == {"1": 1, "+Inf": 0}


class TestIntervalUnion:
    def test_disjoint_then_overlapping(self):
        u = IntervalUnion()
        assert u.add(0.0, 1.0) == 1.0
        assert u.add(2.0, 3.0) == 1.0
        # overlaps both: only the gap (1, 2) is newly covered
        assert u.add(0.5, 2.5) == pytest.approx(1.0)
        assert u.total == pytest.approx(3.0)
        assert u.intervals() == [(0.0, 3.0)]

    def test_touching_intervals_merge(self):
        u = IntervalUnion()
        u.add(0.0, 1.0)
        assert u.add(1.0, 2.0) == pytest.approx(1.0)
        assert len(u) == 1

    def test_contained_interval_adds_nothing(self):
        u = IntervalUnion()
        u.add(0.0, 10.0)
        assert u.add(2.0, 3.0) == 0.0
        assert u.total == 10.0

    def test_zero_length_is_noop(self):
        u = IntervalUnion()
        assert u.add(5.0, 5.0) == 0.0
        assert len(u) == 0

    def test_reversed_interval_rejected(self):
        u = IntervalUnion()
        with pytest.raises(ValueError, match="precedes"):
            u.add(2.0, 1.0)

    def test_zero_length_inside_existing_coverage(self):
        u = IntervalUnion()
        u.add(0.0, 4.0)
        assert u.add(2.0, 2.0) == 0.0
        assert u.add(4.0, 4.0) == 0.0  # exactly at the right edge
        assert u.intervals() == [(0.0, 4.0)]

    def test_abutting_chain_collapses_to_one_interval(self):
        u = IntervalUnion()
        for i in range(10):
            assert u.add(float(i), float(i + 1)) == pytest.approx(1.0)
        assert len(u) == 1
        assert u.intervals() == [(0.0, 10.0)]
        assert u.total == pytest.approx(10.0)

    def test_abutting_on_both_sides_bridges_neighbours(self):
        u = IntervalUnion()
        u.add(0.0, 1.0)
        u.add(2.0, 3.0)
        # touches both neighbours exactly: one merged interval, only
        # the gap is newly covered
        assert u.add(1.0, 2.0) == pytest.approx(1.0)
        assert u.intervals() == [(0.0, 3.0)]

    def test_overlapping_merge_reduces_interval_count(self):
        u = IntervalUnion()
        u.add(0.0, 1.0)
        u.add(2.0, 3.0)
        u.add(4.0, 5.0)
        assert len(u) == 3
        # spans the interior intervals entirely
        assert u.add(0.5, 4.5) == pytest.approx(2.0)
        assert len(u) == 1
        assert u.total == pytest.approx(5.0)

    def test_matches_brute_force_union(self):
        rng = random.Random(42)
        u = IntervalUnion()
        intervals: list[tuple[float, float]] = []
        for _ in range(200):
            start = rng.uniform(0.0, 100.0)
            end = start + rng.uniform(0.0, 10.0)
            u.add(start, end)
            intervals.append((start, end))
        # brute-force merge
        merged_total = 0.0
        cur_s, cur_e = None, 0.0
        for s, e in sorted(intervals):
            if cur_s is None:
                cur_s, cur_e = s, e
            elif s <= cur_e:
                cur_e = max(cur_e, e)
            else:
                merged_total += cur_e - cur_s
                cur_s, cur_e = s, e
        if cur_s is not None:
            merged_total += cur_e - cur_s
        assert u.total == pytest.approx(merged_total)
        # internal invariant: intervals stay sorted and disjoint
        ivs = u.intervals()
        assert all(s < e for s, e in ivs)
        assert all(ivs[i][1] < ivs[i + 1][0] for i in range(len(ivs) - 1))
