"""Golden-file + self-consistency tests over a real C-means run's profile.

One small deterministic C-means job is executed once per module; the
tests check the acceptance invariants the observability layer promises:

* per-rank phase spans tile the makespan within 1e-6 s;
* the span/metric self-consistency gate (:func:`repro.obs.check_profile`)
  passes;
* the metrics registry agrees with the trace it was derived from;
* the phase structure (rank 0's ordered iteration/phase sequence) matches
  the golden file — the runtime cannot silently drop or reorder phases;
* the Chrome export is schema-valid and round-trips.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import obs
from repro.apps.cmeans import CMeansApp
from repro.data.synth import gaussian_mixture
from repro.hardware import delta_cluster
from repro.runtime.job import JobConfig
from repro.runtime.prs import PRSRuntime

GOLDEN = pathlib.Path(__file__).parent / "golden_cmeans_phases.json"


@pytest.fixture(scope="module")
def result():
    pts, _, _ = gaussian_mixture(600, 8, 4, seed=3)
    app = CMeansApp(pts, 4, seed=3, max_iterations=3, epsilon=1e-12)
    return PRSRuntime(delta_cluster(2), JobConfig()).run(app)


class TestAcceptance:
    def test_phase_spans_tile_the_makespan(self, result):
        gap = obs.phase_makespan_gap(result.trace, result.makespan)
        assert gap <= 1e-6

    def test_profile_self_consistency_gate_passes(self, result):
        assert obs.check_profile(result.trace, result.makespan) == []

    def test_every_rank_tiles_from_zero(self, result):
        # Phases run back-to-back per rank, so each rank's span sum is
        # its finish time; no rank outlives the makespan.
        for rank in range(2):
            spans = result.trace.phases(rank=rank)
            assert spans, f"rank {rank} recorded no phases"
            total = sum(s.duration for s in spans)
            finish = max(s.end for s in spans)
            assert total == pytest.approx(finish, abs=1e-9)
            assert finish <= result.makespan + 1e-9


class TestMetricsAgreeWithTrace:
    def test_busy_union_counter_matches_busy_time(self, result):
        counter = result.trace.metrics.counter(obs.DEVICE_BUSY_UNION_SECONDS)
        for device in result.trace.devices():
            assert counter.value(device=device) == pytest.approx(
                result.trace.busy_time(device), rel=1e-12
            )

    def test_flops_counter_matches_trace_totals(self, result):
        counter = result.trace.metrics.counter(obs.DEVICE_FLOPS)
        assert counter.total() == pytest.approx(
            result.trace.total_flops(), rel=1e-12
        )

    def test_phase_seconds_counter_matches_breakdown(self, result):
        counter = result.trace.metrics.counter(obs.PHASE_SECONDS)
        totals = result.phase_totals(rank=0)
        for phase, seconds in totals.items():
            assert counter.value(phase=phase, rank="0") == pytest.approx(
                seconds, rel=1e-12
            )

    def test_job_gauges_set(self, result):
        makespan = result.trace.metrics.gauge(obs.JOB_MAKESPAN_SECONDS)
        iterations = result.trace.metrics.gauge(obs.JOB_ITERATIONS)
        assert makespan.value() == pytest.approx(result.makespan)
        assert iterations.value() == result.iterations

    def test_policy_dispatch_counted(self, result):
        blocks = result.trace.metrics.counter(obs.POLICY_BLOCKS)
        assert blocks.total() > 0


class TestGoldenPhaseStructure:
    def test_rank0_phase_sequence_matches_golden(self, result):
        observed = [
            {"iteration": s.iteration, "phase": s.phase}
            for s in sorted(
                result.trace.phases(rank=0), key=lambda s: (s.start, s.iteration)
            )
        ]
        golden = json.loads(GOLDEN.read_text())
        assert observed == golden, (
            "rank 0 phase structure drifted from the golden file; if the "
            "pipeline deliberately changed, regenerate "
            "tests/obs/golden_cmeans_phases.json"
        )


class TestChromeExport:
    def test_schema_and_round_trip(self, result):
        payload = json.loads(result.trace.tracer.to_chrome_json())
        events = payload["traceEvents"]
        assert any(
            e["ph"] == "M" and e["name"] == "process_name" for e in events
        )
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for ev in complete:
            assert set(ev) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert ev["dur"] >= 0.0

        from repro.obs import SpanTracer

        rebuilt = SpanTracer.from_chrome(payload)
        assert len(rebuilt) == len(result.trace.tracer)
        assert rebuilt.check_consistency(tol=1e-6) == []

    def test_hierarchy_present_in_export(self, result):
        tracer = result.trace.tracer
        cats = {s.category for s in tracer.spans}
        assert {"job", "iteration", "phase"} <= cats
        # at least one device block hangs under a phase span
        phase_ids = {s.span_id for s in tracer.find(category="phase")}
        assert any(
            s.parent_id in phase_ids
            for s in tracer.spans
            if s.category in ("compute", "h2d", "d2h")
        )
