"""Tests for the hierarchical span tracer and its exports."""

from __future__ import annotations

import json

import pytest

from repro.obs import SpanTracer


def build_small_trace() -> SpanTracer:
    """job -> iteration -> phase on one track, blocks on another."""
    t = SpanTracer()
    job = t.begin("job", "rank0", 0.0, category="job")
    it0 = t.begin("iteration 0", "rank0", 0.0, category="iteration")
    ph = t.begin("map", "rank0", 0.1, category="phase")
    t.record(
        "map[0:8]",
        "node.cpu",
        0.1,
        0.4,
        category="compute",
        parent_id=ph.span_id,
        attrs={"flops": 100.0},
    )
    t.end(ph, 0.5)
    t.end(it0, 0.6)
    t.end(job, 0.6)
    return t


class TestNesting:
    def test_begin_auto_parents_on_innermost_open_span(self):
        t = SpanTracer()
        outer = t.begin("outer", "trk", 0.0)
        inner = t.begin("inner", "trk", 0.1)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_auto_parenting_is_per_track(self):
        t = SpanTracer()
        t.begin("a", "trk1", 0.0)
        other = t.begin("b", "trk2", 0.0)
        assert other.parent_id is None

    def test_explicit_parent_crosses_tracks(self):
        t = SpanTracer()
        phase = t.begin("map", "rank0", 0.0, category="phase")
        block = t.record(
            "blk", "gpu0", 0.1, 0.2, parent_id=phase.span_id
        )
        assert block.parent_id == phase.span_id
        assert [s.span_id for s in t.children(phase.span_id)] == [block.span_id]

    def test_end_enforces_lifo_per_track(self):
        t = SpanTracer()
        outer = t.begin("outer", "trk", 0.0)
        t.begin("inner", "trk", 0.1)
        with pytest.raises(ValueError, match="innermost"):
            t.end(outer, 0.5)

    def test_double_close_rejected(self):
        t = SpanTracer()
        s = t.begin("s", "trk", 0.0)
        t.end(s, 1.0)
        with pytest.raises(ValueError, match="already closed"):
            t.end(s, 2.0)

    def test_end_before_start_rejected(self):
        t = SpanTracer()
        s = t.begin("s", "trk", 1.0)
        with pytest.raises(ValueError, match="precedes"):
            t.end(s, 0.5)

    def test_record_end_before_start_rejected(self):
        t = SpanTracer()
        with pytest.raises(ValueError, match="precedes"):
            t.record("s", "trk", 1.0, 0.5)

    def test_finalize_closes_open_spans_innermost_first(self):
        t = SpanTracer()
        outer = t.begin("outer", "trk", 0.0)
        inner = t.begin("inner", "trk", 5.0)
        t.finalize(3.0)  # earlier than inner.start: clamps, never negative
        assert not t.open_spans()
        assert inner.end == 5.0
        assert outer.end == 3.0


class TestOrderingAndQueries:
    def test_spans_keep_recording_order(self):
        t = build_small_trace()
        assert [s.name for s in t.spans] == [
            "job", "iteration 0", "map", "map[0:8]",
        ]
        assert [s.span_id for s in t.spans] == [1, 2, 3, 4]

    def test_tracks_in_first_seen_order(self):
        t = build_small_trace()
        assert t.tracks() == ["rank0", "node.cpu"]

    def test_find_by_category_and_track(self):
        t = build_small_trace()
        assert [s.name for s in t.find(category="phase")] == ["map"]
        assert [s.name for s in t.find(track="node.cpu")] == ["map[0:8]"]


class TestConsistency:
    def test_clean_trace_has_no_problems(self):
        assert build_small_trace().check_consistency() == []

    def test_unclosed_span_reported(self):
        t = SpanTracer()
        t.begin("s", "trk", 0.0)
        assert any("never closed" in p for p in t.check_consistency())

    def test_child_escaping_parent_reported(self):
        t = SpanTracer()
        parent = t.begin("p", "trk", 0.0)
        t.end(parent, 1.0)
        t.record("c", "trk", 0.5, 2.0, parent_id=parent.span_id)
        assert any("escapes parent" in p for p in t.check_consistency())

    def test_unknown_parent_reported(self):
        t = SpanTracer()
        t.record("c", "trk", 0.0, 1.0, parent_id=999)
        assert any("unknown parent" in p for p in t.check_consistency())


class TestChromeExport:
    def test_event_schema(self):
        payload = build_small_trace().to_chrome()
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        # process name + (thread_name, thread_sort_index) per track
        assert len(meta) == 1 + 2 * 2
        assert len(complete) == 4
        for ev in complete:
            assert ev["pid"] == 1
            assert ev["tid"] >= 1
            assert ev["ts"] >= 0.0
            assert ev["dur"] >= 0.0
            assert "span_id" in ev["args"]

    def test_timestamps_scale_to_microseconds(self):
        t = SpanTracer()
        s = t.begin("s", "trk", 0.25)
        t.end(s, 0.75)
        ev = [e for e in t.to_chrome()["traceEvents"] if e["ph"] == "X"][0]
        assert ev["ts"] == pytest.approx(0.25e6)
        assert ev["dur"] == pytest.approx(0.5e6)

    def test_json_serializable(self):
        text = build_small_trace().to_chrome_json()
        payload = json.loads(text)
        assert payload["displayTimeUnit"] == "ms"

    def test_round_trip_preserves_structure(self):
        original = build_small_trace()
        rebuilt = SpanTracer.from_chrome(
            json.loads(original.to_chrome_json())
        )
        assert len(rebuilt) == len(original)
        for a, b in zip(original.spans, rebuilt.spans):
            assert b.span_id == a.span_id
            assert b.name == a.name
            assert b.track == a.track
            assert b.parent_id == a.parent_id
            assert b.category == a.category
            assert b.start == pytest.approx(a.start, abs=1e-12)
            assert b.end == pytest.approx(a.end, abs=1e-12)
        # attrs survive (span_id/parent_id bookkeeping stripped back out)
        assert rebuilt.spans[3].attrs == {"flops": 100.0}
        assert rebuilt.check_consistency(tol=1e-9) == []


class TestJsonl:
    def test_one_object_per_span(self):
        t = build_small_trace()
        lines = t.to_jsonl().splitlines()
        assert len(lines) == 4
        objs = [json.loads(line) for line in lines]
        assert [o["name"] for o in objs] == [
            "job", "iteration 0", "map", "map[0:8]",
        ]
        assert objs[3]["parent_id"] == objs[2]["span_id"]

    def test_empty_tracer_renders_empty(self):
        assert SpanTracer().to_jsonl() == ""
