"""Tests for the post-run trace-analytics layer (`repro.obs.analyze`).

Critical-path correctness is pinned on a hand-built synthetic span tree
with a known longest chain; the audit/drift and end-to-end invariants
run against a real (small) simulated C-means job.
"""

from __future__ import annotations

import pytest

from repro.obs import SpanTracer
from repro.obs.analyze import (
    DecisionLog,
    analyze_imbalance,
    analyze_tracer,
    audited_decisions,
    critical_path,
    device_loads,
    find_stragglers,
    model_drift,
    observed_splits,
)
from repro.obs.analyze.baseline import (
    SCHEMA_VERSION,
    compare_baselines,
    load_baseline,
)


def build_synthetic_tree() -> SpanTracer:
    """One rank, two iterations, known critical chain.

    Timeline (seconds):

    - job [0, 10]
    - iteration 0 [0, 6]: map phase [0, 5] with cpu block [0, 2] and
      gpu block [1, 4.5]; reduce phase [5, 6] (childless)
    - iteration 1 [6, 10]: map phase [6, 9.5] with gpu block [6, 9];
      phase tail [9, 9.5] is slack; iteration tail [9.5, 10] is slack

    Walking back from t=10: iteration-1 slack [9.5, 10], map-phase slack
    [9, 9.5], gpu block [6, 9] (work), then iteration 0: reduce [5, 6]
    (work), map slack [4.5, 5], gpu block [1, 4.5] (work).  The cpu
    block *completes* at 2.0, inside the gpu block's run, so its [0, 1]
    stretch is charged as phase slack — attribution follows the
    last-finisher's completion, not mere activity.
    """
    t = SpanTracer()
    job = t.begin("job", "rank0", 0.0, category="job")
    it0 = t.begin("iteration 0", "rank0", 0.0, category="iteration",
                  attrs={"iteration": 0})
    ph_map0 = t.begin("map", "rank0", 0.0, category="phase",
                      attrs={"rank": 0, "iteration": 0})
    t.record("map[0:4]", "n0.cpu", 0.0, 2.0, category="compute",
             parent_id=ph_map0.span_id, attrs={"flops": 200.0})
    t.record("map[4:8]", "n0.gpu0", 1.0, 4.5, category="compute",
             parent_id=ph_map0.span_id, attrs={"flops": 800.0})
    t.end(ph_map0, 5.0)
    ph_red0 = t.begin("reduce", "rank0", 5.0, category="phase",
                      attrs={"rank": 0, "iteration": 0})
    t.end(ph_red0, 6.0)
    t.end(it0, 6.0)
    it1 = t.begin("iteration 1", "rank0", 6.0, category="iteration",
                  attrs={"iteration": 1})
    ph_map1 = t.begin("map", "rank0", 6.0, category="phase",
                      attrs={"rank": 1, "iteration": 1})
    t.record("map[0:8]", "n0.gpu0", 6.0, 9.0, category="compute",
             parent_id=ph_map1.span_id, attrs={"flops": 1000.0})
    t.end(ph_map1, 9.5)
    t.end(it1, 10.0)
    t.end(job, 10.0)
    return t


class TestCriticalPathSynthetic:
    def test_tiles_makespan_exactly(self):
        cp = critical_path(build_synthetic_tree())
        assert cp.makespan == 10.0
        assert cp.tiling_gap <= 1e-9
        # chronological, contiguous
        assert cp.segments[0].start == 0.0
        assert cp.segments[-1].end == 10.0
        for a, b in zip(cp.segments, cp.segments[1:]):
            assert a.end == pytest.approx(b.start)

    def test_known_chain(self):
        cp = critical_path(build_synthetic_tree())
        names = [(s.name, s.start, s.end, s.is_work) for s in cp.segments]
        assert names == [
            ("map", 0.0, 1.0, False),
            ("map[4:8]", 1.0, 4.5, True),
            ("map", 4.5, 5.0, False),
            ("reduce", 5.0, 6.0, True),
            ("map[0:8]", 6.0, 9.0, True),
            ("map", 9.0, 9.5, False),
            ("iteration 1", 9.5, 10.0, False),
        ]

    def test_work_slack_split(self):
        cp = critical_path(build_synthetic_tree())
        assert cp.work == pytest.approx(7.5)
        assert cp.slack == pytest.approx(2.5)

    def test_by_resource_attribution(self):
        shares = critical_path(build_synthetic_tree()).by_resource()
        assert shares["n0.gpu0"] == pytest.approx(6.5)
        assert "n0.cpu" not in shares
        assert shares["rank0"] == pytest.approx(3.5)

    def test_zero_length_child_cannot_stall_the_walk(self):
        t = SpanTracer()
        job = t.begin("job", "rank0", 0.0, category="job")
        ph = t.begin("empty", "rank0", 2.0, category="phase",
                     attrs={"rank": 0, "iteration": 0})
        t.end(ph, 2.0)  # zero-length phase ending exactly at the cursor
        t.end(job, 2.0)
        cp = critical_path(t)
        assert cp.tiling_gap <= 1e-9
        assert cp.makespan == 2.0

    def test_empty_tracer(self):
        cp = critical_path(SpanTracer())
        assert cp.makespan == 0.0
        assert cp.segments == ()


class TestImbalanceSynthetic:
    def test_device_loads_and_factor(self):
        report = analyze_imbalance(build_synthetic_tree())
        loads = {d.device: d for d in report.devices}
        assert loads["n0.gpu0"].busy_s == pytest.approx(6.5)
        assert loads["n0.cpu"].busy_s == pytest.approx(2.0)
        # factor = max / mean = 6.5 / 4.25
        assert report.imbalance_factor == pytest.approx(6.5 / 4.25)

    def test_stragglers_scored_per_device(self):
        stragglers = find_stragglers(build_synthetic_tree(), top=2)
        assert stragglers[0].device == "n0.gpu0"
        assert stragglers[0].duration == pytest.approx(3.5)

    def test_envelope_spans_not_counted_as_busy(self):
        loads = device_loads(build_synthetic_tree())
        assert all(".cpu" in d.device or ".gpu" in d.device for d in loads)


class TestAuditSynthetic:
    def test_observed_splits_from_spans(self):
        obs_splits = observed_splits(build_synthetic_tree())
        assert obs_splits[("n0", 0)] == (200.0, 800.0)
        assert obs_splits[("n0", 1)] == (0.0, 1000.0)

    def test_drift_pairs_governing_decision(self):
        audit = DecisionLog()
        audit.record("static-split", "n0", 0.0, -1, outputs={"p": 0.25})
        audit.record("adaptive-refit", "n0", 6.0, 0, outputs={"p": 0.1})
        points = model_drift(build_synthetic_tree(), audit)
        by_iter = {p.iteration: p for p in points}
        # iteration 0 governed by the static split (decided at -1)
        assert by_iter[0].predicted_p == 0.25
        assert by_iter[0].observed_p == pytest.approx(0.2)
        assert by_iter[0].drift == pytest.approx(-0.05)
        # iteration 1 governed by the refit decided in iteration 0
        assert by_iter[1].predicted_p == 0.1
        assert by_iter[1].observed_p == 0.0
        assert by_iter[1].decision_kind == "adaptive-refit"

    def test_audited_decisions_attach_observed_p(self):
        audit = DecisionLog()
        audit.record("static-split", "n0", 0.0, -1, outputs={"p": 0.25})
        audit.record("block-plan", "n0", 0.0, -1, outputs={"n_blocks": 8})
        entries = audited_decisions(build_synthetic_tree(), audit)
        assert entries[0]["observed_p"] == pytest.approx(0.2)
        assert entries[0]["drift"] == pytest.approx(-0.05)
        assert "observed_p" not in entries[1]  # not a split kind

    def test_log_round_trip(self):
        audit = DecisionLog()
        audit.record("static-split", "n0", 0.0, -1,
                     inputs={"a": 1.0}, outputs={"p": 0.5})
        clone = DecisionLog.from_records(audit.to_records())
        assert clone.records == audit.records


@pytest.fixture(scope="module")
def cmeans_result():
    from repro.apps.cmeans import CMeansApp
    from repro.cli import _cluster_for
    from repro.data.synth import gaussian_mixture
    from repro.runtime.job import JobConfig
    from repro.runtime.prs import PRSRuntime

    pts, _, _ = gaussian_mixture(800, 8, 3, seed=1)
    app = CMeansApp(pts, 3, seed=1, max_iterations=3)
    return PRSRuntime(
        _cluster_for("delta", 2), JobConfig(scheduling="adaptive-feedback")
    ).run(app)


class TestRealRun:
    def test_tiling_within_acceptance_bound(self, cmeans_result):
        analysis = cmeans_result.analyze()
        assert analysis.critical_path.tiling_gap <= 1e-6
        assert analysis.check() == []

    def test_audit_has_static_split_and_refits(self, cmeans_result):
        audit = cmeans_result.trace.audit
        statics = audit.filter(kind="static-split")
        refits = audit.filter(kind="adaptive-refit")
        assert len(statics) == 2  # one per co-processing node
        assert len(refits) == 2 * cmeans_result.iterations
        for rec in statics + refits:
            assert "p" in rec.outputs
            assert "op" in rec.outputs
            assert rec.inputs  # Eq (1)-(8) inputs recorded

    def test_every_split_decision_pairs_predicted_and_observed(
        self, cmeans_result
    ):
        analysis = cmeans_result.analyze()
        split_entries = [
            e for e in analysis.decisions
            if e["kind"] in ("static-split", "adaptive-refit")
        ]
        assert split_entries
        governed = [e for e in split_entries if e["observed_p"] is not None]
        # Every decision except refits after the final pass is governed.
        assert len(governed) >= len(split_entries) - 2
        for entry in governed:
            assert 0.0 <= entry["observed_p"] <= 1.0
            assert entry["drift"] == pytest.approx(
                entry["observed_p"] - entry["outputs"]["p"]
            )

    def test_drift_small_on_model_faithful_simulator(self, cmeans_result):
        analysis = cmeans_result.analyze()
        assert analysis.drift
        assert analysis.max_abs_drift <= 0.05

    def test_steal_summary_present_with_metrics(self, cmeans_result):
        analysis = cmeans_result.analyze()
        steals = analysis.imbalance.steals
        assert "adaptive-feedback" in steals
        assert steals["adaptive-feedback"]["dispatches"] > 0
        assert 0.0 <= steals["adaptive-feedback"]["efficiency"] <= 1.0

    def test_analysis_json_ready(self, cmeans_result):
        import json

        payload = cmeans_result.analyze().to_dict()
        text = json.dumps(payload)
        assert "critical_path" in payload
        assert "model_drift" in payload
        assert text  # serializable without custom encoders

    def test_saved_profile_round_trip_analyzes(self, cmeans_result):
        import json

        tracer = SpanTracer.from_chrome(
            json.loads(cmeans_result.trace.tracer.to_chrome_json())
        )
        analysis = analyze_tracer(tracer)
        assert analysis.critical_path.tiling_gap <= 1e-6
        assert analysis.imbalance.devices  # device loads survive the trip


class TestBaselineCompare:
    @staticmethod
    def _payload(makespan=1.0, gflops=10.0):
        return {
            "schema_version": SCHEMA_VERSION,
            "benchmark": "trace_analytics",
            "workloads": {
                "w": {
                    "spec": {"name": "w"},
                    "metrics": {
                        "makespan_s": makespan,
                        "critical_path_work_s": makespan * 0.9,
                        "critical_path_slack_s": makespan * 0.1,
                        "gflops": gflops,
                        "max_abs_drift": 0.01,
                        "phase_totals_s": {"map": makespan * 0.8},
                    },
                }
            },
        }

    def test_identical_payloads_pass(self):
        outcome = compare_baselines(
            self._payload(), self._payload(), tolerance=0.01
        )
        assert outcome.ok
        assert outcome.checked > 0

    def test_slowdown_fails(self):
        outcome = compare_baselines(
            self._payload(makespan=1.0), self._payload(makespan=2.0),
            tolerance=0.25,
        )
        assert not outcome.ok
        metrics = {r.metric for r in outcome.regressions}
        assert "makespan_s" in metrics
        assert "phase_totals_s.map" in metrics

    def test_throughput_drop_fails_but_gain_passes(self):
        drop = compare_baselines(
            self._payload(gflops=10.0), self._payload(gflops=5.0),
            tolerance=0.10,
        )
        assert any(r.metric == "gflops" for r in drop.regressions)
        gain = compare_baselines(
            self._payload(gflops=10.0), self._payload(gflops=20.0),
            tolerance=0.10,
        )
        assert gain.ok

    def test_missing_workload_reported_as_skipped(self):
        current = self._payload()
        current["workloads"] = {}
        outcome = compare_baselines(self._payload(), current)
        assert outcome.skipped == ("w",)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        import json

        bad = self._payload()
        bad["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="schema_version"):
            load_baseline(str(path))

    def test_committed_baseline_loads_and_self_compares(self):
        import pathlib

        committed = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks" / "results" / "BENCH_trace_analytics.json"
        )
        payload = load_baseline(str(committed))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert compare_baselines(payload, payload, tolerance=0.01).ok
