"""Tests for the declarative alert-rule engine (repro.obs.rules).

These drive :func:`evaluate_rules` against hand-built
:class:`~repro.obs.timeseries.SeriesBank` contents so every firing /
resolution / for_s edge is pinned without running the simulator.
"""

import pytest

from repro.obs.metrics import ALERTS_TOTAL, MetricsRegistry
from repro.obs.rules import (
    ALERT_CATEGORY,
    ALERTS_TRACK,
    AlertEvent,
    Rule,
    alerts_from_tracer,
    builtin_rules,
    evaluate_rules,
    parse_expr,
    record_alerts,
)
from repro.obs.spans import SpanTracer
from repro.obs.timeseries import SeriesBank


def bank_with(name, points, **labels):
    """A one-series bank sampled at the given (t, v) points."""
    bank = SeriesBank()
    series = bank.get_or_create(name, tuple(sorted(labels.items())))
    for t, v in points:
        series.append(t, v)
    return bank


class TestParseExpr:
    def test_bare_metric(self):
        assert parse_expr("mean(prs_x)") == ("mean", "prs_x", {})

    def test_labels_and_whitespace(self):
        func, metric, labels = parse_expr(
            ' p99( prs_q{policy=dynamic, node="n0"} ) '
        )
        assert func == "p99"
        assert metric == "prs_q"
        assert labels == {"policy": "dynamic", "node": "n0"}

    @pytest.mark.parametrize(
        "expr",
        [
            "mean prs_x",  # no parens
            "mean()",  # no metric
            "frobnicate(prs_x)",  # unknown function
            "mean(prs_x{policy})",  # label matcher without '='
            "mean(prs_x",  # unbalanced
        ],
    )
    def test_malformed_rejected(self, expr):
        with pytest.raises(ValueError):
            parse_expr(expr)


class TestRuleValidation:
    def test_bad_expr_fails_at_construction(self):
        with pytest.raises(ValueError):
            Rule(name="r", expr="nope(", threshold=1.0)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="unknown comparison"):
            Rule(name="r", expr="mean(prs_x)", threshold=1.0, op="==")

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            Rule(name="r", expr="mean(prs_x)", threshold=1.0, window=-1.0)

    def test_negative_for_s_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            Rule(name="r", expr="mean(prs_x)", threshold=1.0, for_s=-0.1)


class TestEvaluateRules:
    def test_simple_threshold_fires_and_resolves(self):
        bank = bank_with(
            "prs_x",
            [(0.0, 0.0), (1.0, 5.0), (2.0, 6.0), (3.0, 0.0), (4.0, 0.0)],
        )
        rule = Rule(name="hot", expr="value(prs_x)", threshold=4.0)
        events = evaluate_rules(bank, [rule])
        assert len(events) == 1
        e = events[0]
        assert (e.start, e.end, e.resolved) == (1.0, 3.0, True)
        assert e.peak == 6.0
        assert e.severity == "warning"

    def test_unresolved_run_ends_at_last_true_sample(self):
        bank = bank_with("prs_x", [(0.0, 0.0), (1.0, 5.0), (2.0, 5.0)])
        rule = Rule(name="hot", expr="value(prs_x)", threshold=4.0)
        (e,) = evaluate_rules(bank, [rule])
        assert (e.start, e.end, e.resolved) == (1.0, 2.0, False)

    def test_for_s_suppresses_short_blips(self):
        # Condition holds at exactly one sample: held duration is 0,
        # which is < for_s, so no alert.
        bank = bank_with(
            "prs_x", [(0.0, 0.0), (1.0, 9.0), (2.0, 0.0), (3.0, 0.0)]
        )
        rule = Rule(
            name="hot", expr="value(prs_x)", threshold=4.0, for_s=0.5
        )
        assert evaluate_rules(bank, [rule]) == []

    def test_for_s_met_by_sustained_run(self):
        bank = bank_with(
            "prs_x",
            [(0.0, 0.0), (1.0, 9.0), (2.0, 9.0), (3.0, 9.0), (4.0, 0.0)],
        )
        rule = Rule(
            name="hot", expr="value(prs_x)", threshold=4.0, for_s=2.0
        )
        (e,) = evaluate_rules(bank, [rule])
        assert (e.start, e.end, e.resolved) == (1.0, 4.0, True)

    def test_lower_bound_rule_tracks_minimum_peak(self):
        # With op="<" the "peak" is the most extreme (smallest) value.
        bank = bank_with(
            "prs_x", [(0.0, 10.0), (1.0, 2.0), (2.0, 1.0), (3.0, 10.0)]
        )
        rule = Rule(name="cold", expr="value(prs_x)", threshold=5.0, op="<")
        (e,) = evaluate_rules(bank, [rule])
        assert e.peak == 1.0

    def test_windowed_increase(self):
        # Counter climbs by 6 between t=1 and t=2; window=1 sees it.
        bank = bank_with(
            "prs_total", [(0.0, 0.0), (1.0, 1.0), (2.0, 7.0), (3.0, 7.0)]
        )
        rule = Rule(
            name="storm",
            expr="increase(prs_total)",
            threshold=5.0,
            window=1.0,
            op=">=",
        )
        (e,) = evaluate_rules(bank, [rule])
        assert e.start == 2.0
        assert e.peak == 6.0

    def test_label_subset_matching_fires_per_series(self):
        bank = SeriesBank()
        for dev, vals in (("gpu", 9.0), ("cpu", 9.0)):
            s = bank.get_or_create(
                "prs_x", (("device", dev), ("node", "n0"))
            )
            s.append(0.0, 0.0)
            s.append(1.0, vals)
        rule = Rule(
            name="hot", expr="value(prs_x{node=n0})", threshold=4.0
        )
        events = evaluate_rules(bank, [rule])
        # One event per matching series, deterministically ordered.
        assert [dict(e.labels)["device"] for e in events] == ["cpu", "gpu"]

    def test_label_mismatch_is_silent(self):
        bank = bank_with("prs_x", [(0.0, 9.0), (1.0, 9.0)], device="gpu")
        rule = Rule(
            name="hot", expr="value(prs_x{device=tpu})", threshold=4.0
        )
        assert evaluate_rules(bank, [rule]) == []

    def test_end_truncates_evaluation(self):
        bank = bank_with("prs_x", [(0.0, 0.0), (1.0, 9.0), (5.0, 9.0)])
        rule = Rule(name="hot", expr="value(prs_x)", threshold=4.0)
        (e,) = evaluate_rules(bank, [rule], end=2.0)
        assert e.end <= 2.0

    def test_default_rules_are_builtin(self):
        bank = bank_with("prs_unrelated", [(0.0, 1.0)])
        assert evaluate_rules(bank) == []  # healthy bank, builtin set

    def test_builtin_rules_parse_and_name_unique(self):
        rules = builtin_rules()
        names = [r.name for r in rules]
        assert len(names) == len(set(names))
        for rule in rules:
            parse_expr(rule.expr)  # must not raise


class TestRecordAlerts:
    def _event(self, **overrides):
        base = dict(
            rule="hot",
            severity="critical",
            labels=(("device", "gpu"),),
            start=1.0,
            end=2.0,
            resolved=True,
            peak=9.0,
            threshold=4.0,
            expr="value(prs_x)",
        )
        base.update(overrides)
        return AlertEvent(**base)

    def test_spans_and_counter(self):
        tracer = SpanTracer()
        metrics = MetricsRegistry()
        record_alerts(tracer, metrics, [self._event()])
        (span,) = tracer.find(category=ALERT_CATEGORY)
        assert span.track == ALERTS_TRACK
        assert span.name == "hot"
        assert (span.start, span.end) == (1.0, 2.0)
        assert span.attrs["severity"] == "critical"
        counter = metrics.counter(ALERTS_TOTAL)
        assert counter.value(rule="hot", severity="critical") == 1.0

    def test_alert_spans_are_closed_and_consistent(self):
        tracer = SpanTracer()
        record_alerts(tracer, MetricsRegistry(), [self._event()])
        assert tracer.open_spans() == []
        assert tracer.check_consistency() == []

    def test_round_trip_through_alerts_from_tracer(self):
        tracer = SpanTracer()
        events = [
            self._event(),
            self._event(rule="cold", severity="warning", start=0.5),
        ]
        record_alerts(tracer, MetricsRegistry(), events)
        recovered = alerts_from_tracer(tracer)
        assert [a["rule"] for a in recovered] == ["cold", "hot"]
        hot = recovered[1]
        assert hot["labels"] == {"device": "gpu"}
        assert hot["peak"] == 9.0
        assert hot["resolved"] is True
        assert hot["expr"] == "value(prs_x)"

    def test_event_to_dict_is_json_ready(self):
        d = self._event().to_dict()
        assert d["labels"] == {"device": "gpu"}
        assert d["rule"] == "hot"
        assert set(d) == {
            "rule", "severity", "labels", "start", "end",
            "resolved", "peak", "threshold", "expr",
        }
