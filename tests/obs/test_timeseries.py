"""Unit + integration tests for the time-series sampler.

Three layers:

* :class:`Series` / :class:`SeriesBank` ring-buffer and aggregator
  semantics on hand-built data;
* :class:`MetricSampler` grid mechanics driven through a bare
  :class:`Trace` (no simulation) — back-fill, pre-mutation snapshots,
  the end anchor, derived probes;
* whole-runtime invariants: sampling must not perturb the schedule
  (bitwise-identical makespans/spans/outputs), sample times must stay
  monotone across rank-restart incarnations, and a fixed fault seed
  must reproduce the exact series and alerts.
"""

from __future__ import annotations

import pytest

from repro.data.synth import gaussian_mixture
from repro.hardware import delta_cluster
from repro.obs.metrics import (
    COMM_BYTES,
    COMM_MESSAGES,
    DEVICE_BUSY_UNION_SECONDS,
    _label_key,
)
from repro.obs.timeseries import (
    DEVICE_BUSY_FRACTION,
    DEVICE_IMBALANCE,
    LINK_MODEL_RATIO,
    LINK_UTILIZATION,
    MetricSampler,
    Series,
    SeriesBank,
)
from repro.simulate.trace import Trace


def run_cmeans(n_nodes=2, sample_interval=1e-3, faults=None, fault_seed=0,
               **config_kwargs):
    from repro.apps.cmeans import CMeansApp
    from repro.runtime.job import JobConfig
    from repro.runtime.prs import PRSRuntime

    pts, _, _ = gaussian_mixture(600, 8, 4, seed=3)
    app = CMeansApp(pts, 4, seed=3, max_iterations=3, epsilon=1e-12)
    config = JobConfig(sample_interval=sample_interval, faults=faults,
                       fault_seed=fault_seed, **config_kwargs)
    return PRSRuntime(delta_cluster(n_nodes), config).run(app)


class TestSeries:
    def test_append_rejects_time_regression(self):
        s = Series("s")
        s.append(1.0, 10.0)
        with pytest.raises(ValueError, match="precedes"):
            s.append(0.5, 11.0)

    def test_equal_timestamps_allowed(self):
        s = Series("s")
        s.append(1.0, 10.0)
        s.append(1.0, 11.0)  # the off-grid end anchor can coincide
        assert len(s) == 2

    def test_ring_drops_oldest(self):
        s = Series("s", capacity=3)
        for i in range(5):
            s.append(float(i), float(i) * 10)
        assert s.dropped == 2
        assert s.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]

    def test_capacity_floor(self):
        with pytest.raises(ValueError, match="capacity"):
            Series("s", capacity=1)

    def test_window_is_inclusive_both_ends(self):
        s = Series("s")
        for t in (0.0, 1.0, 2.0, 3.0):
            s.append(t, t)
        assert [t for t, _ in s.window(1.0, 2.0)] == [1.0, 2.0]

    def test_value_is_latest_at_or_before(self):
        s = Series("s")
        s.append(1.0, 10.0)
        s.append(2.0, 20.0)
        assert s.value(0.5) is None
        assert s.value(1.5) == 10.0
        assert s.value(2.0) == 20.0

    def test_increase_and_rate(self):
        s = Series("s")
        s.append(0.0, 100.0)
        s.append(2.0, 106.0)
        assert s.increase(0.0, 2.0) == pytest.approx(6.0)
        assert s.rate(0.0, 2.0) == pytest.approx(3.0)
        assert s.rate(0.0, 0.5) is None  # single sample in window

    def test_mean_max_min(self):
        s = Series("s")
        for t, v in ((0.0, 1.0), (1.0, 3.0), (2.0, 2.0)):
            s.append(t, v)
        assert s.mean(0.0, 2.0) == pytest.approx(2.0)
        assert s.vmax(0.0, 2.0) == 3.0
        assert s.vmin(0.0, 2.0) == 1.0
        assert s.mean(5.0, 6.0) is None

    def test_quantile_interpolates(self):
        s = Series("s")
        for t, v in enumerate((10.0, 20.0, 30.0, 40.0)):
            s.append(float(t), v)
        assert s.quantile(0.5, 0.0, 3.0) == pytest.approx(25.0)
        assert s.quantile(0.0, 0.0, 3.0) == 10.0
        assert s.quantile(1.0, 0.0, 3.0) == 40.0

    def test_quantile_single_sample_and_empty(self):
        s = Series("s")
        assert s.quantile(0.9, 0.0, 1.0) is None
        s.append(0.5, 7.0)
        assert s.quantile(0.99, 0.0, 1.0) == 7.0

    def test_quantile_range_checked(self):
        s = Series("s")
        with pytest.raises(ValueError, match="quantile"):
            s.quantile(1.5, 0.0, 1.0)


class TestSeriesBank:
    def test_matching_selects_label_subsets_sorted(self):
        bank = SeriesBank()
        bank.get_or_create("m", _label_key({"link": "remote", "x": "1"}))
        bank.get_or_create("m", _label_key({"link": "local"}))
        bank.get_or_create("other", _label_key({"link": "remote"}))
        got = bank.matching("m", {"link": "remote"})
        assert [s.labels for s in got] == [{"link": "remote", "x": "1"}]
        assert len(bank.matching("m")) == 2

    def test_jsonl_round_trip(self):
        import json

        bank = SeriesBank()
        s = bank.get_or_create("m", _label_key({"a": "b"}))
        s.append(0.0, 1.0)
        s.append(1.0, 2.5)
        lines = bank.to_jsonl_lines()
        rebuilt = SeriesBank.from_dicts([json.loads(x) for x in lines])
        assert rebuilt.to_jsonl_lines() == lines
        assert rebuilt.get("m", a="b").points() == [(0.0, 1.0), (1.0, 2.5)]

    def test_names_and_total_points(self):
        bank = SeriesBank()
        bank.get_or_create("b", ()).append(0.0, 1.0)
        bank.get_or_create("a", ()).append(0.0, 1.0)
        assert bank.names() == ["a", "b"]
        assert bank.total_points == 2


class TestSamplerGrid:
    def make(self, interval=1e-3):
        trace = Trace()
        sampler = trace.attach_sampler(MetricSampler(interval=interval))
        return trace, sampler

    def test_interval_validated(self):
        with pytest.raises(ValueError, match="interval"):
            MetricSampler(interval=0.0)

    def test_backfills_every_grid_instant(self):
        trace, sampler = self.make(interval=1e-3)
        trace.metrics.counter("c_total").inc(1)
        trace.tick(0.0)  # grid 0
        trace.tick(5.5e-3)  # grids 1..5 back-filled in one tick
        series = sampler.bank.get("c_total")
        assert [t for t, _ in series.points()] == pytest.approx(
            [0.0, 1e-3, 2e-3, 3e-3, 4e-3, 5e-3]
        )

    def test_snapshot_reflects_pre_mutation_state(self):
        # The tick happens *before* the mutation, so the sample at a
        # grid instant must not see updates applied at or after it.
        trace, sampler = self.make(interval=1e-3)
        counter = trace.metrics.counter("c_total")
        counter.inc(1)
        trace.tick(0.0)
        trace.tick(1e-3)  # grid instant 1e-3 sampled pre-mutation
        counter.inc(100)  # the mutation dated 1e-3
        trace.tick(2e-3)
        series = sampler.bank.get("c_total")
        assert series.points() == [(0.0, 1.0), (1e-3, 1.0), (2e-3, 101.0)]

    def test_finalize_adds_end_anchor_and_freezes(self):
        trace, sampler = self.make(interval=1e-3)
        trace.metrics.counter("c_total").inc(1)
        trace.tick(0.0)
        sampler.finalize(2.5e-3)
        series = sampler.bank.get("c_total")
        assert [t for t, _ in series.points()] == pytest.approx(
            [0.0, 1e-3, 2e-3, 2.5e-3]
        )
        assert sampler.finalized
        before = sampler.total_samples
        trace.tick(5e-3)  # ignored after finalize
        assert sampler.total_samples == before

    def test_busy_fraction_and_imbalance_derived(self):
        trace, sampler = self.make(interval=1e-3)
        busy = trace.metrics.counter(DEVICE_BUSY_UNION_SECONDS)
        trace.tick(0.0)
        # device cpu busy the whole 1 ms, gpu idle
        busy.inc(1e-3, device="n0.cpu")
        busy.inc(0.0, device="n0.gpu")
        trace.tick(1e-3 + 1e-9)
        frac = sampler.bank.get(DEVICE_BUSY_FRACTION, device="n0.cpu")
        assert frac.points()[-1][1] == pytest.approx(1.0, rel=1e-3)
        imb = sampler.bank.get(DEVICE_IMBALANCE)
        # one busy + one idle device: max/mean = 1.0/0.5 = 2.0
        assert imb.points()[-1][1] == pytest.approx(2.0, rel=1e-3)

    def test_link_model_ratio_tracks_observed_over_modelled(self):
        trace, sampler = self.make(interval=1e-3)
        sampler.register_link_model("remote", latency_s=1e-5,
                                    bytes_per_s=1e9)
        msgs = trace.metrics.counter(COMM_MESSAGES)
        nbytes = trace.metrics.counter(COMM_BYTES)
        busy = trace.metrics.counter("prs_device_busy_seconds_total")
        trace.tick(0.0)
        # 10 messages of 1e5 B: modelled = 10*1e-5 + 1e6/1e9 = 1.1e-3 s;
        # the NIC reports 3x that -> ratio 3.
        msgs.inc(10, src="r0", dst="r1", tag="data", link="remote")
        nbytes.inc(1e6, src="r0", dst="r1", tag="data", link="remote")
        busy.inc(3.3e-3, device="net.r1", kind="net")
        trace.tick(1e-3 + 1e-9)
        util = sampler.bank.get(LINK_UTILIZATION, link="remote")
        assert util.points()[-1][1] == pytest.approx(1.1, rel=1e-3)
        ratio = sampler.bank.get(LINK_MODEL_RATIO, link="remote")
        assert ratio.points()[-1][1] == pytest.approx(3.0, rel=1e-6)

    def test_link_model_validation(self):
        sampler = MetricSampler()
        with pytest.raises(ValueError, match="bandwidth"):
            sampler.register_link_model("x", latency_s=1e-6, bytes_per_s=0.0)


class TestZeroPerturbation:
    def test_sampled_run_is_bitwise_identical(self):
        sampled = run_cmeans(sample_interval=1e-3)
        bare = run_cmeans(sample_interval=None)
        assert sampled.makespan == bare.makespan
        assert sampled.engine_events == bare.engine_events
        assert sampled.sampler_samples > 0 and bare.sampler_samples == 0
        spans_a = [(s.phase, s.rank, s.start, s.end)
                   for s in sampled.trace.phase_spans]
        spans_b = [(s.phase, s.rank, s.start, s.end)
                   for s in bare.trace.phase_spans]
        assert spans_a == spans_b
        assert sorted(map(str, sampled.output.items())) == sorted(
            map(str, bare.output.items()))

    def test_profile_checks_pass_with_alert_spans(self):
        from repro import obs

        result = run_cmeans()
        assert obs.check_profile(result.trace, result.makespan) == []
        assert result.analyze().check() == []


class TestSamplingUnderFaults:
    def test_sample_times_monotone_across_rank_restart(self):
        result = run_cmeans(n_nodes=2, faults="rank_kill@1:t=5e-3",
                            fault_seed=7)
        assert result.recovery is not None
        assert result.recovery.rank_restarts >= 1
        bank = result.trace.sampler.bank
        assert bank.total_points > 0
        for series in bank:
            times = [t for t, _ in series.points()]
            assert times == sorted(times), series.name

    def test_retry_counter_sampled_under_gpu_kill(self):
        result = run_cmeans(faults="gpu_kill@0:t=5e-3", fault_seed=7)
        assert result.recovery.blocks_retried > 0
        series = result.trace.sampler.bank.matching(
            "prs_recovery_blocks_retried_total")
        assert series and series[0].points()[-1][1] > 0

    def test_fault_seed_determinism_of_series_and_alerts(self):
        a = run_cmeans(faults="gpu_kill@0:t=1e-3~9e-3", fault_seed=11)
        b = run_cmeans(faults="gpu_kill@0:t=1e-3~9e-3", fault_seed=11)
        assert (a.trace.sampler.bank.to_jsonl_lines()
                == b.trace.sampler.bank.to_jsonl_lines())
        assert ([al.to_dict() for al in a.alerts]
                == [al.to_dict() for al in b.alerts])

    def test_different_fault_seed_moves_the_series(self):
        # A ranged net_slow factor scales simulated wire time directly,
        # so different seeds must yield visibly different sampled
        # histories (a kill-time range can quantize to the same block
        # boundary; a bandwidth factor cannot hide).
        spec = "net_slow@*:factor=2~5,t0=0,t1=1"
        a = run_cmeans(faults=spec, fault_seed=11)
        c = run_cmeans(faults=spec, fault_seed=12)
        assert (a.trace.sampler.bank.to_jsonl_lines()
                != c.trace.sampler.bank.to_jsonl_lines())
