"""Unit tests for FatNode, NetworkSpec and Cluster."""

import pytest

from repro.hardware import Cluster, FatNode
from repro.hardware.cluster import NetworkSpec
from repro.hardware.device import CpuSpec, GpuSpec
from repro.hardware.presets import delta_node, tesla_c2070, xeon_x5660_pair


class TestFatNode:
    def test_devices_order_cpu_first(self, delta_two_gpus):
        devs = delta_two_gpus.devices
        assert devs[0].is_cpu and all(d.is_gpu for d in devs[1:])

    def test_gpu_property_returns_first(self, delta_two_gpus):
        assert delta_two_gpus.gpu == delta_two_gpus.gpus[0]

    def test_gpu_property_raises_without_gpu(self):
        node = FatNode(name="cpuonly", cpu=xeon_x5660_pair())
        with pytest.raises(ValueError, match="no GPU"):
            _ = node.gpu

    def test_daemon_count_one_per_gpu_plus_one(self, delta_two_gpus):
        # Paper §III.C.1: 2 GPUs + 12 cores -> 3 daemon threads.
        assert delta_two_gpus.daemon_count() == 3

    def test_with_gpus_restricts(self, delta_two_gpus):
        assert delta_two_gpus.with_gpus(1).n_gpus == 1

    def test_with_gpus_rejects_too_many(self, delta):
        with pytest.raises(ValueError):
            delta.with_gpus(5)

    def test_cpu_slot_type_checked(self):
        with pytest.raises(ValueError, match="cpu slot"):
            FatNode(name="bad", cpu=tesla_c2070())

    def test_gpu_slot_type_checked(self):
        with pytest.raises(ValueError, match="gpus slot"):
            FatNode(name="bad", cpu=xeon_x5660_pair(),
                    gpus=(xeon_x5660_pair(),))

    def test_peak_aggregates_all_devices(self, delta):
        assert delta.peak_gflops == pytest.approx(
            delta.cpu.peak_gflops + delta.gpu.peak_gflops
        )


class TestNetworkSpec:
    def test_point_to_point_time(self):
        net = NetworkSpec(latency=1e-6, bandwidth=1.0)
        assert net.point_to_point_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_bytes_costs_latency(self):
        net = NetworkSpec(latency=5e-6, bandwidth=1.0)
        assert net.point_to_point_time(0) == pytest.approx(5e-6)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            NetworkSpec().point_to_point_time(-1)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkSpec(bandwidth=0.0)


class TestCluster:
    def test_homogeneous_detection(self, delta4):
        assert delta4.is_homogeneous

    def test_heterogeneous_detection(self, delta4):
        from repro.hardware.presets import bigred2_node
        mixed = Cluster(name="mix",
                        nodes=(delta4.nodes[0], bigred2_node()))
        assert not mixed.is_homogeneous

    def test_subset_counts(self, delta8):
        assert delta8.subset(3).n_nodes == 3

    def test_subset_bounds(self, delta4):
        with pytest.raises(ValueError):
            delta4.subset(0)
        with pytest.raises(ValueError):
            delta4.subset(5)

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            Cluster(name="empty", nodes=())

    def test_node_lookup(self, delta4):
        assert delta4.node(2) is delta4.nodes[2]


class TestPresets:
    def test_delta_matches_table4(self, delta_two_gpus):
        # Table 4: C2070 x2, 448 cores/GPU, 6 GB/GPU; Xeon 12 cores, 192 GB.
        assert delta_two_gpus.n_gpus == 2
        gpu = delta_two_gpus.gpu
        assert gpu.cores == 448
        assert gpu.memory_bytes == 6 * 1024**3
        assert delta_two_gpus.cpu.cores == 12
        assert delta_two_gpus.cpu.memory_bytes == 192 * 1024**3

    def test_bigred2_matches_table4(self, bigred2):
        # Table 4: K20 x1, 2496 cores, 5 GB; Opteron 32 cores, 62 GB.
        assert bigred2.n_gpus == 1
        assert bigred2.gpu.cores == 2496
        assert bigred2.gpu.memory_bytes == 5 * 1024**3
        assert bigred2.cpu.cores == 32

    def test_fermi_vs_kepler_queues(self, delta, bigred2):
        # §III.B.3b: Fermi one hardware work queue, Kepler Hyper-Q many.
        assert delta.gpu.work_queues == 1
        assert bigred2.gpu.work_queues > 1

    def test_cluster_presets_sized(self):
        from repro.hardware import bigred2_cluster, delta_cluster
        assert delta_cluster(4).n_nodes == 4
        assert bigred2_cluster(2).n_nodes == 2

    def test_delta_node_names_unique(self, delta8):
        names = [n.name for n in delta8.nodes]
        assert len(set(names)) == len(names)
