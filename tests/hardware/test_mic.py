"""Tests for the MIC (Xeon Phi) accelerator backend — paper future work b.

The paper's generality claim: the analytic model "can be applied to a wide
range of SPMD applications and hardware devices" because it only consumes
roofline parameters.  A Knights Corner card is another PCI-E throughput
device; everything — Equation (8), the daemons, the full runtime — must
work on it unmodified.
"""

import pytest

from repro.core.analytic import workload_split
from repro.core.intensity import cmeans_intensity, gemv_intensity
from repro.hardware import Cluster, mic_node, xeon_phi_5110p
from repro.hardware.cluster import NetworkSpec
from repro.runtime.job import JobConfig
from repro.runtime.prs import PRSRuntime

from tests.helpers import ModSumApp


@pytest.fixture
def phi_node():
    return mic_node()


class TestPhiSpec:
    def test_is_accelerator_kind(self):
        assert xeon_phi_5110p().is_gpu  # PCI-E attached throughput device

    def test_roofline_parameters(self):
        phi = xeon_phi_5110p()
        assert phi.peak_gflops == pytest.approx(2022.0)
        assert phi.ridge_point(staged=False) == pytest.approx(2022.0 / 320.0)

    def test_node_pairs_phi_with_xeon_host(self, phi_node):
        assert phi_node.cpu.cores == 12
        assert phi_node.gpu.name == "Xeon Phi 5110P"


class TestAnalyticModelOnPhi:
    def test_low_intensity_favours_host(self, phi_node):
        d = workload_split(phi_node, gemv_intensity(), staged=True)
        assert d.p > 0.9

    def test_high_intensity_favours_phi(self, phi_node):
        d = workload_split(phi_node, cmeans_intensity(100), staged=False)
        # p = P_c / (P_phi + P_c) = 130 / 2152
        assert d.p == pytest.approx(130.0 / (2022.0 + 130.0), abs=1e-3)

    def test_phi_vs_gpu_split_differs(self, phi_node, delta):
        """Different accelerator, different split — same model."""
        d_phi = workload_split(phi_node, cmeans_intensity(100), staged=False)
        d_gpu = workload_split(delta, cmeans_intensity(100), staged=False)
        assert d_phi.p != pytest.approx(d_gpu.p, abs=1e-3)


class TestRuntimeOnPhi:
    def test_full_job_runs_on_phi_cluster(self, phi_node):
        cluster = Cluster(
            name="mic",
            nodes=(phi_node,),
            network=NetworkSpec(latency=2e-6, bandwidth=3.2),
        )
        app = ModSumApp(n=2000, n_keys=4)
        result = PRSRuntime(cluster, JobConfig()).run(app)
        assert result.output == app.expected_output()
        assert result.device_fraction(".gpu") > 0  # the Phi did real work
