"""Unit tests for DeviceSpec: roofline quantities and validation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.hardware.device import CpuSpec, DeviceKind, DeviceSpec, GpuSpec


def make_gpu(peak=1000.0, dram=100.0, pcie=10.0, queues=1):
    return GpuSpec(
        name="g", peak_gflops=peak, dram_bandwidth=dram,
        pcie_bandwidth=pcie, cores=256, work_queues=queues,
    )


def make_cpu(peak=100.0, dram=25.0):
    return CpuSpec(name="c", peak_gflops=peak, dram_bandwidth=dram, cores=8)


class TestConstruction:
    def test_cpu_helper_sets_kind(self):
        assert make_cpu().kind is DeviceKind.CPU

    def test_gpu_helper_sets_kind(self):
        assert make_gpu().kind is DeviceKind.GPU

    def test_gpu_requires_pcie(self):
        with pytest.raises(ValueError, match="pcie"):
            DeviceSpec(name="g", kind=DeviceKind.GPU, peak_gflops=1.0,
                       dram_bandwidth=1.0)

    def test_cpu_rejects_pcie(self):
        with pytest.raises(ValueError, match="pcie"):
            DeviceSpec(name="c", kind=DeviceKind.CPU, peak_gflops=1.0,
                       dram_bandwidth=1.0, pcie_bandwidth=2.0)

    @pytest.mark.parametrize("field,value", [
        ("peak_gflops", 0.0), ("peak_gflops", -1.0),
        ("dram_bandwidth", 0.0), ("cores", 0), ("work_queues", 0),
    ])
    def test_rejects_nonpositive(self, field, value):
        kwargs = dict(name="g", kind=DeviceKind.GPU, peak_gflops=1.0,
                      dram_bandwidth=1.0, pcie_bandwidth=1.0)
        kwargs[field] = value
        with pytest.raises((ValueError, TypeError)):
            DeviceSpec(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_cpu().peak_gflops = 5.0


class TestEffectiveBandwidth:
    def test_cpu_is_dram(self):
        assert make_cpu(dram=25.0).effective_bandwidth() == 25.0

    def test_cpu_ignores_staged_flag(self):
        cpu = make_cpu()
        assert cpu.effective_bandwidth(True) == cpu.effective_bandwidth(False)

    def test_gpu_staged_is_harmonic_combination(self):
        gpu = make_gpu(dram=100.0, pcie=10.0)
        expected = 1.0 / (1.0 / 100.0 + 1.0 / 10.0)
        assert gpu.effective_bandwidth(staged=True) == pytest.approx(expected)

    def test_gpu_resident_is_dram(self):
        assert make_gpu(dram=100.0).effective_bandwidth(staged=False) == 100.0

    def test_staged_slower_than_resident(self):
        gpu = make_gpu()
        assert gpu.effective_bandwidth(True) < gpu.effective_bandwidth(False)


class TestRidgeAndAttainable:
    def test_ridge_point_definition(self):
        cpu = make_cpu(peak=100.0, dram=25.0)
        assert cpu.ridge_point() == pytest.approx(4.0)

    def test_attainable_below_ridge_is_bandwidth_bound(self):
        cpu = make_cpu(peak=100.0, dram=25.0)
        assert cpu.attainable_gflops(2.0) == pytest.approx(50.0)

    def test_attainable_above_ridge_is_peak(self):
        cpu = make_cpu(peak=100.0, dram=25.0)
        assert cpu.attainable_gflops(100.0) == 100.0

    def test_attainable_at_ridge_is_peak(self):
        cpu = make_cpu(peak=100.0, dram=25.0)
        assert cpu.attainable_gflops(cpu.ridge_point()) == pytest.approx(100.0)

    def test_staged_gpu_ridge_beyond_resident_ridge(self):
        gpu = make_gpu()
        assert gpu.ridge_point(staged=True) > gpu.ridge_point(staged=False)

    @given(
        peak=st.floats(1.0, 1e4), dram=st.floats(1.0, 500.0),
        pcie=st.floats(0.1, 32.0), ai=st.floats(0.01, 1e4),
    )
    def test_attainable_never_exceeds_either_roof(self, peak, dram, pcie, ai):
        gpu = make_gpu(peak=peak, dram=dram, pcie=pcie)
        for staged in (True, False):
            f = gpu.attainable_gflops(ai, staged)
            assert f <= peak + 1e-9
            assert f <= ai * gpu.effective_bandwidth(staged) + 1e-9
            assert f > 0

    @given(ai=st.floats(0.01, 1e4))
    def test_attainable_monotone_in_intensity(self, ai):
        gpu = make_gpu()
        assert gpu.attainable_gflops(ai * 2) >= gpu.attainable_gflops(ai)


class TestScaled:
    def test_scaled_changes_only_peak(self):
        gpu = make_gpu(peak=1000.0)
        faster = gpu.scaled(2.0)
        assert faster.peak_gflops == 2000.0
        assert faster.dram_bandwidth == gpu.dram_bandwidth
        assert faster.pcie_bandwidth == gpu.pcie_bandwidth

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_gpu().scaled(0.0)
