"""Integrity tests for the paper-claims registry."""

import pathlib

import pytest

from repro.claims import CLAIMS, claims_table

REPO = pathlib.Path(__file__).parent.parent


class TestRegistryIntegrity:
    def test_ids_unique(self):
        ids = [c.id for c in CLAIMS]
        assert len(set(ids)) == len(ids)

    def test_every_claim_has_verification(self):
        for claim in CLAIMS:
            assert claim.verified_by, claim.id

    def test_verification_files_exist(self):
        for claim in CLAIMS:
            for rel in claim.verified_by:
                assert (REPO / rel).is_file(), f"{claim.id}: {rel} missing"

    def test_core_artefacts_covered(self):
        """Every table/figure of the evaluation has at least one claim."""
        sources = " ".join(c.source for c in CLAIMS)
        for artefact in ("Table 3", "Table 5", "Figure 3", "Figure 4",
                         "Figure 5", "Figure 6"):
            assert artefact in sources, artefact

    def test_statements_nonempty(self):
        for claim in CLAIMS:
            assert claim.statement and claim.reproduced

    def test_table_renders(self):
        text = claims_table()
        assert "T5-analytic" in text
        assert str(len(CLAIMS)) in text

    def test_cli_claims_command(self, capsys):
        from repro.cli import main

        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "paper claims tracked" in out


class TestCliJson:
    def test_run_json_output(self, capsys):
        import json

        from repro.cli import main

        code = main([
            "run", "--app", "gemv", "--size", "500", "--dims", "16",
            "--nodes", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "gemv"
        assert payload["cluster"]["nodes"] == 2
        assert payload["makespan_s"] > 0
        assert 0 < payload["splits"][0]["p"] < 1
