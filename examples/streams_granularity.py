#!/usr/bin/env python3
"""Task granularity and CUDA streams: Equations (9)-(11) in action.

§III.B.3b of the paper decides GPU task granularity with two quantities:
the transfer/compute overlap percentage (Equation 9) and — for kernels
whose arithmetic intensity grows with block size, like BLAS3 — the minimal
block size MinBs that saturates the device (Equation 11).  This example:

1. sweeps arithmetic intensity and compares the *simulated* stream speedup
   (two-engine GPU model: copy engine + compute engine) against the
   overlap percentage Equation (9) predicts;
2. shows the MinBs rule on the row-blocked GEMM profile: splitting below
   MinBs costs throughput, so the scheduler refuses to.

Run:  python examples/streams_granularity.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.granularity import (
    min_block_size,
    overlap_percentage,
    should_use_streams,
)
from repro.core.intensity import dgemm_intensity
from repro.hardware.presets import delta_node
from repro.simulate.streams import StreamBlock, simulate_stream_batch

N_BLOCKS, BLOCK_BYTES = 8, 2e7


def main() -> None:
    gpu = delta_node(n_gpus=1).gpu

    # ------------------------------------------------------------------
    # 1. Overlap sweep: streams pay off only near op ~ 0.5.
    # ------------------------------------------------------------------
    rows = []
    for ai in (2, 20, 200, 1000, 5000, 50_000):
        blocks = [StreamBlock(BLOCK_BYTES, ai * BLOCK_BYTES)] * N_BLOCKS
        serial = simulate_stream_batch(gpu, blocks, n_streams=1)
        overlapped = simulate_stream_batch(gpu, blocks, n_streams=2)
        rows.append(
            [
                f"{ai:g}",
                f"{overlap_percentage(gpu, float(ai), BLOCK_BYTES):.2f}",
                f"{serial * 1e3:.2f} ms",
                f"{overlapped * 1e3:.2f} ms",
                f"{serial / overlapped:.2f}x",
            ]
        )
    print(
        format_table(
            ["A (flops/B)", "op (eq 9)", "serial", "2 streams", "speedup"],
            rows,
            title=f"Stream overlap on {gpu.name} "
                  f"({N_BLOCKS} blocks x {BLOCK_BYTES:.0e} B)",
        )
    )
    print("\n'The stream approach can only improve application performance "
          "whose data\ntransferring overhead is similar to computation "
          "overhead' — the win peaks at op ~ 0.5.\n")

    # ------------------------------------------------------------------
    # 2. MinBs on the BLAS3 profile.
    # ------------------------------------------------------------------
    profile = dgemm_intensity()
    minbs = min_block_size(gpu, profile)
    print(f"DGEMM MinBs on {gpu.name}: {minbs:.3e} bytes "
          f"(intensity there: {profile.at(minbs):.1f} flops/B "
          f"= staged ridge point)")
    rows = []
    for factor in (0.25, 0.5, 1.0, 2.0, 8.0):
        size = factor * minbs
        rate = gpu.attainable_gflops(profile.at(size), staged=True)
        rows.append(
            [
                f"{factor:g} x MinBs",
                f"{rate:.1f}",
                f"{rate / gpu.peak_gflops:.0%}",
                "yes" if should_use_streams(gpu, profile, size) else "no",
            ]
        )
    print(
        format_table(
            ["block size", "attainable GF/s", "of peak", "streams?"],
            rows,
            title="\nEquation (11): blocks below MinBs cannot reach peak",
        )
    )


if __name__ == "__main__":
    main()
