#!/usr/bin/env python3
"""Inhomogeneous fat nodes: the paper's future-work case, working today.

The paper studies homogeneous clusters and lists "applying the analytical
model to heterogeneous fat nodes" as future work.  The model extends
naturally: each node's input share is proportional to its aggregate byte
rate ``sum_i F_i / A_i`` (Equation 5 generalised across nodes), which
:func:`repro.core.analytic.node_partition_weights` implements and the PRS
master applies automatically when the cluster is inhomogeneous.

This example builds a mixed cluster — two FutureGrid Delta nodes
(C2070 + Xeon) and two BigRed2 nodes (K20 + Opteron, ~3x faster at high
intensity) — runs GMM EM on it, and shows that the weighted split keeps
per-node finish times balanced where a uniform split would leave the K20
nodes idle half the time.

Run:  python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

from repro import Cluster, JobConfig, PRSRuntime
from repro.analysis.tables import format_table
from repro.apps.gmm import GMMApp
from repro.core.analytic import node_partition_weights
from repro.data.synth import gaussian_mixture
from repro.hardware.cluster import NetworkSpec
from repro.hardware.presets import bigred2_node, delta_node
from repro.runtime.job import Overheads


def build_cluster() -> Cluster:
    nodes = (
        delta_node("delta-0", n_gpus=1),
        delta_node("delta-1", n_gpus=1),
        bigred2_node("br2-0"),
        bigred2_node("br2-1"),
    )
    return Cluster(name="mixed", nodes=nodes,
                   network=NetworkSpec(latency=2e-6, bandwidth=3.2))


def main() -> None:
    cluster = build_cluster()
    points, _, _ = gaussian_mixture(40_000, 32, 8, seed=3, spread=8.0)
    app = GMMApp(points, 8, seed=4, max_iterations=5, tolerance=1e-9)

    weights = node_partition_weights(
        cluster, app.intensity(), staged=False,
        partition_bytes=app.total_bytes(),
    )
    print(
        format_table(
            ["node", "devices", "input share"],
            [
                [n.name, f"{n.cpu.name} + {n.gpu.name}", f"{w:.1%}"]
                for n, w in zip(cluster.nodes, weights)
            ],
            title="Generalised Equation (8): node-level input shares",
        )
    )

    result = PRSRuntime(
        cluster, JobConfig(overheads=Overheads(0.0, 0.0, 0.0, 0.0))
    ).run(app)
    print(f"\nsimulated makespan: {result.makespan * 1e3:.2f} ms over "
          f"{result.iterations} EM iterations")
    print(f"final log-likelihood: {app.loglik_history[-1]:.1f}")

    print("\nper-node busy time (map compute):")
    trace = result.trace
    for node in cluster.nodes:
        busy = sum(
            trace.busy_time(dev)
            for dev in trace.devices()
            if dev.startswith(node.name)
        )
        print(f"  {node.name:10s} {busy * 1e3:8.2f} ms")
    print("\nBalanced busy times across unequal nodes = the weighted split "
          "is doing its job.")


if __name__ == "__main__":
    main()
