#!/usr/bin/env python3
"""Why an analytic model: Equation (8) vs Qilin-style profiling.

The paper's §II.B critique of profiling schedulers: they "needed to run a
set of small test jobs on the heterogeneous devices" or "maintain a
database in order to store the performance profiling information".  This
example runs both schedulers on the same applications and prices the
difference: identical mapping decisions, but the profiler pays training
time on every new (application, machine) pair, while Equation (8) answers
from data-sheet parameters before the first run.

Run:  python examples/profiling_vs_analytic.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.adaptive import AdaptiveMapper, roofline_slice_timer
from repro.core.analytic import predicted_runtime, workload_split
from repro.core.intensity import cmeans_intensity, fft_intensity, gemv_intensity
from repro.hardware.presets import delta_node

N_ITEMS = 5_000_000

APPS = {
    "gemv": (gemv_intensity(), 256.0, True),
    "fft": (fft_intensity(1 << 20), 128.0, True),
    "cmeans": (cmeans_intensity(100), 400.0, False),
}


def main() -> None:
    node = delta_node(n_gpus=1)
    mapper = AdaptiveMapper(train_fraction=0.05)
    rows = []
    for name, (profile, item_bytes, staged) in APPS.items():
        nbytes = N_ITEMS * item_bytes
        ai = profile.at(nbytes)

        analytic = workload_split(node, profile, staged=staged)
        job = predicted_runtime(node, profile, nbytes, analytic.p, staged=staged)

        timer = roofline_slice_timer(node, ai, item_bytes, staged=staged)
        adaptive = mapper.decide(name, N_ITEMS, timer)

        rows.append(
            [
                name,
                f"{analytic.p:.1%}",
                f"{adaptive.p:.1%}",
                "0 (data sheet)",
                f"{adaptive.training_seconds * 1e3:.1f} ms",
                f"{adaptive.training_seconds / job:.0%} of one job",
            ]
        )
    print(
        format_table(
            ["app", "p analytic", "p profiled", "analytic overhead",
             "profiling overhead", "relative"],
            rows,
            title=f"Scheduling {N_ITEMS:,}-item jobs on one Delta node",
        )
    )
    print(
        "\nSame split either way — the analytic model's value is the "
        "zeroth-run answer:\nno test jobs, no database "
        "(repro.core.adaptive implements the profiling side\n"
        "faithfully, including Qilin's database that amortizes repeats)."
    )


if __name__ == "__main__":
    main()
