#!/usr/bin/env python3
"""GEMV co-processing: the paper's order-of-magnitude headline.

GEMV's arithmetic intensity (2 flops/byte) sits far below both ridge
points, so a staged GPU is starved by PCI-E while the CPU streams from
DRAM — Equation (8) assigns ~97 % of the rows to the CPU, and
"using all CPU cores increase the GPU performance by 1011.8 %" (§IV).

This example runs the same row-striped GEMV three ways on a simulated
4-node Delta cluster — CPU-only, GPU-only, and the analytic GPU+CPU
co-processing split — verifies all three against NumPy, and prints the
timing comparison.

Run:  python examples/gemv_coprocessing.py
"""

from __future__ import annotations

import numpy as np

from repro import JobConfig, PRSRuntime, delta_cluster
from repro.analysis.tables import format_table
from repro.apps.gemv import GemvApp
from repro.data.synth import random_matrix, random_vector
from repro.runtime.job import Overheads

ROWS, COLS = 80_000, 128


def main() -> None:
    a = random_matrix(ROWS, COLS, seed=1)
    x = random_vector(COLS, seed=2)
    cluster = delta_cluster(n_nodes=4)
    # Compute-phase comparison: zero the fixed runtime overheads, as the
    # paper's GEMV measurements isolate the kernel+staging costs.
    quiet = Overheads(0.0, 0.0, 0.0, 0.0)

    configs = {
        "CPU only": JobConfig(use_gpu=False, overheads=quiet),
        "GPU only": JobConfig(use_cpu=False, overheads=quiet),
        "GPU+CPU (eq 8)": JobConfig(overheads=quiet),
    }

    reference = a.astype(np.float64) @ x.astype(np.float64)
    rows, times = [], {}
    for name, config in configs.items():
        app = GemvApp(a, x)
        result = PRSRuntime(cluster, config).run(app)
        y = app.assemble(result.output)
        max_err = float(np.max(np.abs(y - reference)))
        times[name] = result.makespan
        split = f"{result.splits[0].p:.1%}" if result.splits else "-"
        rows.append(
            [
                name,
                f"{result.makespan * 1e3:.2f} ms",
                f"{result.gflops_per_node(4):.1f}",
                split,
                f"{max_err:.1e}",
            ]
        )

    print(
        format_table(
            ["configuration", "makespan", "GF/s per node", "CPU share p",
             "max |err|"],
            rows,
            title=f"GEMV {ROWS}x{COLS} on 4 simulated Delta nodes",
        )
    )
    gain = times["GPU only"] / times["GPU+CPU (eq 8)"]
    print(f"\nco-processing gain over GPU-only: {gain:.1f}x "
          f"(paper measured ~11x, analytic ceiling ~36x)")


if __name__ == "__main__":
    main()
