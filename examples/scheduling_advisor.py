#!/usr/bin/env python3
"""Scheduling advisor: use the paper's analytic model standalone.

The core contribution of the paper is a closed-form scheduling model
(Equations 1-11) that needs *no test runs* — just the roofline parameters
of the hardware and the arithmetic intensity of the application.  This
example uses it the way a practitioner would: ask, for a set of candidate
applications on a given fat node,

* what CPU/GPU workload split Equation (8) prescribes and why (regime),
* the predicted co-processing speedup over GPU-only execution,
* whether CUDA streams are worth launching (Equations 9-11) and the
  minimal GPU block size that saturates the device.

Run:  python examples/scheduling_advisor.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.analytic import AnalyticModel, workload_split
from repro.core.granularity import (
    min_block_size,
    overlap_percentage,
    should_use_streams,
)
from repro.core.intensity import (
    cmeans_intensity,
    dgemm_intensity,
    gemv_intensity,
    gmm_intensity,
    wordcount_intensity,
)
from repro.hardware import bigred2_node, delta_node

PARTITION = 256e6  # 256 MB partition reaching the sub-task scheduler


def advise(node, name, profile, resident):
    staged = not resident
    decision = workload_split(node, profile, staged=staged,
                              partition_bytes=PARTITION)
    model = AnalyticModel(node, profile, staged=staged)
    speedup = model.speedup_over_gpu_only(PARTITION)

    gpu = node.gpu
    op = overlap_percentage(gpu, profile, PARTITION * decision.gpu_fraction)
    streams = should_use_streams(gpu, profile, PARTITION * decision.gpu_fraction)
    try:
        minbs = f"{min_block_size(gpu, profile):.2e} B"
    except ValueError:
        minbs = "unreachable"
    return [
        name,
        f"{profile.at(PARTITION):.3g}",
        decision.regime.value,
        f"{decision.p:.1%}",
        f"{speedup:.2f}x",
        f"{op:.2f}",
        "yes" if streams else "no",
        minbs,
    ]


def main() -> None:
    candidates = [
        ("wordcount", wordcount_intensity(), False),
        ("gemv", gemv_intensity(), False),
        ("cmeans M=100 (cached)", cmeans_intensity(100), True),
        ("gmm M=10 D=60 (cached)", gmm_intensity(10, 60), True),
        ("dgemm (BLAS3)", dgemm_intensity(), False),
    ]
    for node in (delta_node(n_gpus=1), bigred2_node()):
        rows = [advise(node, *candidate) for candidate in candidates]
        print(
            format_table(
                ["application", "A", "regime", "CPU p", "co-proc gain",
                 "op (eq9)", "streams?", "MinBs (eq11)"],
                rows,
                title=f"\nScheduling plan for one {node.name} fat node "
                      f"({node.cpu.name} + {node.gpu.name})",
            )
        )


if __name__ == "__main__":
    main()
