#!/usr/bin/env python3
"""Quickstart: fuzzy C-means on a simulated 4-node GPU cluster.

This is the paper's flagship application (§IV.A.1) end to end: generate a
Gaussian-mixture dataset, run the C-means MapReduce app on the PRS runtime
over a simulated FutureGrid Delta cluster, and inspect both the numerical
results (real NumPy clustering) and the simulated execution profile
(roofline-timed).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import JobConfig, PRSRuntime, delta_cluster
from repro.analysis.metrics import cluster_overlap
from repro.apps.cmeans import CMeansApp
from repro.data.synth import gaussian_mixture


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data: 20k points in 16 dimensions from 5 well-separated blobs.
    # ------------------------------------------------------------------
    points, true_labels, _ = gaussian_mixture(
        n_points=20_000, n_dims=16, n_clusters=5, seed=1, spread=10.0
    )
    print(f"dataset: {points.shape[0]} points x {points.shape[1]}D, 5 clusters")

    # ------------------------------------------------------------------
    # 2. Application: C-means is an IterativeMapReduceApp — map computes
    #    partial cluster centers per block (Equations 13/14), reduce sums
    #    them, update() recomputes centers until convergence.
    # ------------------------------------------------------------------
    app = CMeansApp(points, n_clusters=5, epsilon=1e-3, max_iterations=30, seed=7)
    print(f"arithmetic intensity: {app.intensity().at(1e9):.0f} flops/byte")

    # ------------------------------------------------------------------
    # 3. Runtime: 4 simulated Delta fat nodes (Tesla C2070 + 12 Xeon
    #    cores each), static scheduling via the analytic model.
    # ------------------------------------------------------------------
    cluster = delta_cluster(n_nodes=4)
    result = PRSRuntime(cluster, JobConfig()).run(app)

    # ------------------------------------------------------------------
    # 4. Results.
    # ------------------------------------------------------------------
    split = result.splits[0]
    print(f"\nEquation (8) split: CPU {split.p:.1%} / GPU {split.gpu_fraction:.1%}"
          f"  (regime: {split.regime.value})")
    print(f"iterations to convergence: {result.iterations}")
    print(f"simulated makespan: {result.makespan * 1e3:.1f} ms")
    print(f"aggregate throughput: {result.gflops:.1f} GFLOP/s "
          f"({result.gflops_per_node(4):.1f} per node)")
    print(f"network traffic: {result.network_bytes / 1e6:.2f} MB")

    overlap = cluster_overlap(app.labels(), true_labels)
    print(f"\nclustering agreement with ground truth: {overlap:.1%}")
    print("objective J_m per iteration:",
          np.array2string(np.array(app.objective_history[:6]), precision=0))

    print("\nper-device utilization:")
    for device, stats in sorted(result.trace.summary().items()):
        if stats["flops"] == 0:
            continue
        print(f"  {device:18s} busy {stats['busy'] * 1e3:8.2f} ms   "
              f"{stats['flops'] / 1e9:8.2f} GFLOP   "
              f"util {stats['utilization']:.0%}")


if __name__ == "__main__":
    main()
